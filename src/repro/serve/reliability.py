"""Fault-tolerant serving: deadlines, retries, failover, breakers.

PR 7's serving stack assumed a healthy store: one corrupt segment
without an ``origin``, one slow disk, or one overloaded session and a
query fails or stalls.  This module is the policy layer that makes
:class:`~repro.serve.server.VolumeServer` survive all three, built on
the same resilience primitives the experiment harness uses
(:mod:`repro.resilience.policy`, :mod:`repro.resilience.faults`):

* :class:`Deadline` — a cooperative per-query deadline token.  The
  read path calls :meth:`Deadline.check` between segment reads, so a
  query never stalls past its budget inside synchronous processing
  (asyncio cancellation can only land at an ``await``, and the span
  discipline keeps processing synchronous).
* :class:`CircuitBreaker` — per-shard, **clock-free**: it trips open
  after ``threshold`` consecutive faults, then counts *denied
  requests* instead of seconds; after ``probe_after`` denials it
  half-opens and lets exactly one probe through.  Success closes it,
  failure re-trips.  No wall clock means a chaos run replays the same
  state machine every time.
* :class:`ReadPolicy` — the store-facing bundle: breaker routing,
  hedged replica ordering for shards observed slow, and the deadline
  hook.  :meth:`~repro.serve.store.ChunkStore.read_segment` consults
  it on every replica attempt.
* :class:`QueryRejected` — the typed result a shed / failed query
  returns.  Rejection is an *answer*, never a hang: a session's
  results always line up 1:1 with its queries, and every rejection is
  accounted in a ``serve.reliability_*`` counter.

All knobs live on the frozen :class:`ReliabilityConfig`; a server
constructed without one keeps PR 7's raise-on-failure behavior.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..instrument import trace as _trace
from ..resilience.policy import RetryPolicy

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "CircuitBreaker",
    "ReadPolicy",
    "ReliabilityConfig",
    "QueryRejected",
]


class DeadlineExceeded(RuntimeError):
    """A query's deadline expired mid-processing (cooperatively raised)."""


@dataclass
class Deadline:
    """Cooperative deadline token for one query attempt.

    ``seconds=None`` never expires.  The clock starts at construction;
    the read path calls :meth:`check` between segment reads, which is
    the only place synchronous processing can yield to a budget.
    """

    # deadlines are wall-clock *by design* — they bound real latency,
    # not control flow; membership/breaker decisions stay clock-free
    seconds: Optional[float]
    started: float = field(
        default_factory=time.perf_counter)  # repro: noqa[RPC205]

    def remaining(self) -> float:
        """Seconds left (``inf`` for a boundless deadline)."""
        if self.seconds is None:
            return float("inf")
        elapsed = time.perf_counter() - self.started  # repro: noqa[RPC205]
        return self.seconds - elapsed

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"query deadline of {self.seconds:g}s expired")


class CircuitBreaker:
    """Per-shard breaker with a clock-free half-open probe schedule.

    States: ``closed`` (healthy) → ``open`` after ``threshold``
    consecutive faults → ``half-open`` after ``probe_after`` denied
    requests, which admits one probe; a successful probe closes the
    breaker, a failed one re-opens it (and the denial count restarts).
    Counting denials instead of seconds keeps chaos runs replayable:
    the same request sequence walks the same state sequence.
    """

    def __init__(self, shard: int, *, threshold: int = 3,
                 probe_after: int = 8):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if probe_after < 1:
            raise ValueError(f"probe_after must be >= 1, got {probe_after}")
        self.shard = shard
        self.threshold = threshold
        self.probe_after = probe_after
        self.state = "closed"
        self.consecutive_failures = 0
        self.denied = 0

    def allow(self) -> bool:
        """May a read be routed to this shard right now?

        An ``open`` breaker counts the denial; the ``probe_after``-th
        denial half-opens it and admits the caller as the probe.
        """
        if self.state != "open":
            return True
        self.denied += 1
        if self.denied >= self.probe_after:
            self.state = "half-open"
            self.denied = 0
            _trace.add("serve.reliability_breaker_half_open", 1)
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != "closed":
            self.state = "closed"
            _trace.add("serve.reliability_breaker_close", 1)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        trip = (self.state == "half-open"
                or self.consecutive_failures >= self.threshold)
        if trip and self.state != "open":
            self.state = "open"
            self.denied = 0
            _trace.add("serve.reliability_breaker_open", 1)


@dataclass(frozen=True)
class ReliabilityConfig:
    """Every serving-resilience knob, in one frozen bundle.

    ``deadline_s=None`` disables deadlines; ``max_inflight=None``
    disables admission control (nothing is ever shed).  ``retry`` is a
    standard :class:`~repro.resilience.policy.RetryPolicy` — a failed
    *query attempt* (not a single replica read) is retried per its
    classification, each retry with a fresh deadline.  ``hedge`` turns
    on hedged replica ordering: a read observed slower than
    ``hedge_threshold_s`` marks its shard, and the next read whose
    primary lands on a marked shard starts from the secondary replica
    instead of waiting on the slow one.
    """

    deadline_s: Optional[float] = None
    max_inflight: Optional[int] = None
    retry: RetryPolicy = RetryPolicy(max_retries=2, backoff_base=0.01)
    hedge: bool = False
    hedge_threshold_s: float = 0.05
    breaker_threshold: int = 3
    breaker_probe_after: int = 8

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}")


@dataclass
class QueryRejected:
    """The typed answer a shed or failed query gets — never a hang.

    ``reason`` is ``"shed"`` (admission control turned it away),
    ``"deadline"`` (every attempt ran out of budget) or ``"error"``
    (every attempt failed and the retry policy gave up); ``error``
    carries the last failure string and ``attempts`` how many times
    the query ran.  ``ok`` mirrors :class:`~repro.serve.server.
    QueryResult` so sessions filter with one predicate.
    """

    query: object
    reason: str
    error: str = ""
    attempts: int = 0

    ok = False


class ReadPolicy:
    """The store-facing routing policy one server instance owns.

    Holds the per-shard breakers and the slow-shard marks hedging
    feeds; the server refreshes :attr:`deadline` per query attempt.
    Store and server mutate it only inside synchronous processing
    sections, so no locks are needed and replays are deterministic.
    """

    def __init__(self, config: ReliabilityConfig):
        self.config = config
        self.breakers: Dict[int, CircuitBreaker] = {}
        self.slow_shards: Dict[int, int] = {}
        self.deadline: Optional[Deadline] = None

    def breaker(self, shard: int) -> CircuitBreaker:
        br = self.breakers.get(shard)
        if br is None:
            br = CircuitBreaker(shard,
                                threshold=self.config.breaker_threshold,
                                probe_after=self.config.breaker_probe_after)
            self.breakers[shard] = br
        return br

    def allow_shard(self, shard: int) -> bool:
        """Breaker gate for one replica read."""
        return self.breaker(shard).allow()

    def on_success(self, shard: int, seconds: float) -> None:
        self.breaker(shard).record_success()
        if self.config.hedge and seconds > self.config.hedge_threshold_s:
            self.slow_shards[shard] = self.slow_shards.get(shard, 0) + 1
            _trace.add("serve.reliability_slow_reads", 1)

    def on_failure(self, shard: int) -> None:
        self.breaker(shard).record_failure()

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExceeded` when the attempt's budget is
        spent (no-op when no deadline is set)."""
        if self.deadline is not None:
            self.deadline.check()

    def order_shards(self, shards: List[int]) -> List[int]:
        """Shard-keyed twin of :meth:`replica_order` for map-routed
        reads (:meth:`~repro.serve.store.ChunkStore.read_segment` with
        ``locations``): when hedging is on and the primary shard was
        recently observed slow, one slow-mark is consumed and the list
        rotates so the next copy goes first.
        """
        if self.config.hedge and len(shards) > 1 \
                and self.slow_shards.get(shards[0], 0) > 0:
            self.slow_shards[shards[0]] -= 1
            _trace.add("serve.reliability_hedges", 1)
            return shards[1:] + shards[:1]
        return list(shards)

    def replica_order(self, store, seg: int) -> List[int]:
        """Replica indexes to try for ``seg``, hedged when warranted.

        Default order is 0..replicas-1.  When hedging is on and the
        primary's shard was recently observed slow, one slow-mark is
        consumed and the order is rotated so the secondary goes first —
        the hedged read — while the primary stays available as
        failover.
        """
        order = list(range(store.replicas))
        if self.config.hedge and store.replicas > 1:
            primary = store.shard_of_segment(seg, 0)
            if self.slow_shards.get(primary, 0) > 0:
                self.slow_shards[primary] -= 1
                _trace.add("serve.reliability_hedges", 1)
                order = order[1:] + order[:1]
        return order
