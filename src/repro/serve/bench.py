"""Serve bench: the same traffic against every chunk order, compared.

The experiment the serving layer exists to run: brick one volume
several ways (row-major baseline vs space-filling curves), replay the
*identical* seeded workload against each store, and report

* p50 / p99 query latency and throughput (QPS),
* mean segments touched per bbox-family query — the
  placement-dependent I/O cost,
* chunk utilization (bytes returned / bytes touched),
* cache hit rate, cross-checked bit-for-bit against memsim
  (:mod:`repro.serve.validate`) before any number is reported.

The **gate** asserts the paper's claim transplanted to storage: a
curve order must touch no more segments per bbox query than the
row-major baseline.  ``scripts/bench_serve.py`` and ``repro
serve-bench`` are thin wrappers over :func:`run_serve_bench`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.synthetic import combustion_field
from .server import VolumeServer
from .store import ChunkStore
from .traffic import arrival_times, generate_queries
from .validate import assert_cache_consistent

__all__ = ["OrderResult", "ServeBenchResult", "run_serve_bench", "render"]


@dataclass
class OrderResult:
    """Aggregate serving metrics for one chunk-order spec."""
    order: str
    n_queries: int
    p50_ms: float
    p99_ms: float
    qps: float
    mean_segments_per_bbox: float
    mean_chunks_needed_per_bbox: float
    utilization: float
    cache_hit_rate: float
    cache_accesses: int
    crosscheck_accesses: int

    def row(self) -> Dict[str, object]:
        return {
            "order": self.order, "n_queries": self.n_queries,
            "p50_ms": round(self.p50_ms, 3), "p99_ms": round(self.p99_ms, 3),
            "qps": round(self.qps, 1),
            "segments_per_bbox": round(self.mean_segments_per_bbox, 3),
            "chunks_needed_per_bbox":
                round(self.mean_chunks_needed_per_bbox, 3),
            "utilization": round(self.utilization, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
        }


@dataclass
class ServeBenchResult:
    """All per-order results plus the gate verdict."""
    shape: Sequence[int]
    chunk: int
    chunks_per_segment: int
    cache: str
    baseline: str
    results: List[OrderResult] = field(default_factory=list)

    def by_order(self, order: str) -> OrderResult:
        for r in self.results:
            if r.order == order:
                return r
        raise KeyError(order)

    def gate(self) -> List[str]:
        """Gate failures (empty = pass): every non-baseline order must
        touch no more segments per bbox query than the baseline."""
        base = self.by_order(self.baseline)
        failures = []
        for r in self.results:
            if r.order == self.baseline:
                continue
            if r.mean_segments_per_bbox > base.mean_segments_per_bbox:
                failures.append(
                    f"{r.order}: {r.mean_segments_per_bbox:.3f} segments "
                    f"per bbox query > baseline {self.baseline} "
                    f"{base.mean_segments_per_bbox:.3f}")
        return failures

    @property
    def ok(self) -> bool:
        return not self.gate()


def _bbox_like(result) -> bool:
    """Queries whose cost is a box fetch (bbox/slab/viewport)."""
    return result.query.kind in ("bbox", "slab", "viewport")


def run_serve_bench(*, shape: int = 64, chunk: int = 8,
                    chunks_per_segment: int = 4,
                    orders: Sequence[str] = ("array", "morton", "hilbert"),
                    baseline: str = "array",
                    n_queries: int = 100, seed: int = 0,
                    cache: str = "lru:capacity=32",
                    concurrency: int = 4,
                    profile: str = "burst",
                    on_degenerate: str = "error",
                    workdir: Optional[str] = None) -> ServeBenchResult:
    """Run the cross-layout serve comparison.  See module docstring.

    ``workdir`` hosts the store directories (a temp dir by default,
    removed afterwards).  ``baseline`` must be one of ``orders``.

    A chunk grid whose x-extent equals ``chunks_per_segment`` is a
    *degenerate* gate configuration: row-major segments align exactly
    with grid rows, the baseline is locally optimal, and the gate
    silently favors row-major (docs/SERVING.md).  ``on_degenerate``
    decides what happens then: ``"error"`` (default) rejects the
    configuration, ``"adjust"`` doubles ``chunks_per_segment`` and
    warns.
    """
    if baseline not in orders:
        raise ValueError(f"baseline {baseline!r} must be in orders "
                         f"{list(orders)}")
    if on_degenerate not in ("error", "adjust"):
        raise ValueError(f"on_degenerate must be 'error' or 'adjust', "
                         f"got {on_degenerate!r}")
    grid_x = -(-shape // chunk)
    if grid_x == chunks_per_segment:
        msg = (f"degenerate gate configuration: chunk-grid x-extent "
               f"({grid_x}) == chunks_per_segment ({chunks_per_segment}); "
               f"row-major segments align exactly with grid rows, so the "
               f"gate silently favors the row-major baseline")
        if on_degenerate == "error":
            raise ValueError(
                msg + " — change the geometry or pass "
                "on_degenerate='adjust'")
        chunks_per_segment *= 2
        warnings.warn(
            msg + f"; adjusted chunks_per_segment to "
            f"{chunks_per_segment}", RuntimeWarning, stacklevel=2)
    vol_shape = (shape, shape, shape)
    dense = combustion_field(vol_shape, seed=seed)
    queries = generate_queries(vol_shape, n_queries, seed=seed)
    arrivals = arrival_times(n_queries, profile=profile, seed=seed)
    out = ServeBenchResult(shape=vol_shape, chunk=chunk,
                           chunks_per_segment=chunks_per_segment,
                           cache=cache, baseline=baseline)
    tmp = None
    if workdir is None:
        tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
        workdir = tmp
    try:
        for order in orders:
            safe = order.replace(":", "_").replace(",", "_").replace("=", "-")
            store_path = os.path.join(workdir, f"store-{safe}")
            store = ChunkStore.create(store_path, dense, order=order,
                                      chunk=chunk,
                                      chunks_per_segment=chunks_per_segment)
            server = VolumeServer(store, cache=cache)
            t0 = time.perf_counter()
            results = server.serve_session(
                queries, concurrency=concurrency, arrivals=arrivals,
                time_scale=0.0)
            wall = time.perf_counter() - t0
            # a reliability-configured server may return QueryRejected
            # entries; the bench prices answered queries only
            results = [r for r in results if r.ok]
            check = assert_cache_consistent(server.cache)
            lat = np.array([r.latency_s for r in results]) * 1e3
            box = [r for r in results if _bbox_like(r)]
            touched = sum(r.bytes_touched for r in results)
            returned = sum(r.bytes_returned for r in results)
            c = server.cache.counters()
            out.results.append(OrderResult(
                order=order, n_queries=len(results),
                p50_ms=float(np.percentile(lat, 50)),
                p99_ms=float(np.percentile(lat, 99)),
                qps=len(results) / wall if wall > 0 else float("inf"),
                mean_segments_per_bbox=float(np.mean(
                    [r.segments_touched for r in box])) if box else 0.0,
                mean_chunks_needed_per_bbox=float(np.mean(
                    [r.chunks_needed for r in box])) if box else 0.0,
                utilization=returned / touched if touched else 1.0,
                cache_hit_rate=c["hits"] / c["accesses"]
                if c["accesses"] else 0.0,
                cache_accesses=c["accesses"],
                crosscheck_accesses=check.accesses))
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
    return out


def render(bench: ServeBenchResult) -> str:
    """Fixed-width table + gate verdict, for scripts and the CLI."""
    cols = ["order", "p50_ms", "p99_ms", "qps", "segments_per_bbox",
            "utilization", "cache_hit_rate"]
    rows = [r.row() for r in bench.results]
    widths = {c: max(len(c), *(len(str(row[c])) for row in rows))
              for c in cols}
    lines = [
        f"serve bench: shape={tuple(bench.shape)} chunk={bench.chunk} "
        f"seg={bench.chunks_per_segment} cache={bench.cache} "
        f"(cache counters cross-checked against memsim, exact)",
        "  ".join(c.ljust(widths[c]) for c in cols),
        "  ".join("-" * widths[c] for c in cols),
    ]
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in cols))
    failures = bench.gate()
    if failures:
        lines.append("GATE FAIL:")
        lines.extend(f"  {f}" for f in failures)
    else:
        base = bench.by_order(bench.baseline)
        best = min((r for r in bench.results if r.order != bench.baseline),
                   key=lambda r: r.mean_segments_per_bbox, default=None)
        if best is not None and best.mean_segments_per_bbox > 0:
            ratio = base.mean_segments_per_bbox / best.mean_segments_per_bbox
            lines.append(
                f"GATE PASS: curve orders touch <= baseline segments per "
                f"bbox query (best {best.order}: {ratio:.2f}x fewer than "
                f"{bench.baseline})")
        else:
            lines.append("GATE PASS")
    return "\n".join(lines)
