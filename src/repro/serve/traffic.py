"""Synthetic serving traffic: what a viewer actually asks a volume store.

Real exploration sessions are not uniform random boxes.  They are a
few popular viewpoints revisited constantly (Zipf), orbit sweeps where
consecutive frames overlap heavily, slab scrubbing along an axis, and
the occasional probe ray — arriving in bursts, not a steady drip.
The generator models exactly that, fully seeded, so two benches with
the same seed replay the same session byte-for-byte (and so the bench
can hand the *same* workload to every layout under test).

* :func:`generate_queries` — the query mix.  Viewpoint popularity is
  Zipf-distributed (``zipf_s`` is the exponent; heavier tail → more
  reuse for a cache to exploit).
* :func:`arrival_times` — cumulative arrival offsets, ``"steady"``
  (Poisson) or ``"burst"`` (Poisson bursts of back-to-back queries).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .server import BBoxQuery, Query, RayQuery, SlabQuery, ViewportQuery

__all__ = ["generate_queries", "arrival_times", "DEFAULT_MIX"]

#: default query mix — mostly viewport traffic, like a viewer session
DEFAULT_MIX: Dict[str, float] = {
    "viewport": 0.45,
    "orbit": 0.15,
    "bbox": 0.2,
    "slab": 0.15,
    "ray": 0.05,
}


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-s)
    return w / w.sum()


def generate_queries(shape: Sequence[int], n: int, *, seed: int = 0,
                     mix: Optional[Dict[str, float]] = None,
                     zipf_s: float = 1.2,
                     n_viewpoints: int = 8) -> List[Query]:
    """``n`` seeded queries over a volume of ``shape``.

    ``mix`` maps query families to weights (normalized internally;
    defaults to :data:`DEFAULT_MIX`).  Families:

    * ``viewport`` — a Zipf-popular orbit viewpoint with mild random
      zoom/pan (the hot-viewpoint revisits a cache feeds on);
    * ``orbit`` — a run of consecutive viewpoints (a camera sweep);
      counts as one family pick but emits several queries;
    * ``bbox`` — random boxes, a third of them elongated along one
      axis (the worst case for row-major chunk placement);
    * ``slab`` — thin slices along a random axis;
    * ``ray`` — probe rays through the volume center region.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    shape = tuple(int(s) for s in shape)
    mix = dict(DEFAULT_MIX if mix is None else mix)
    unknown = set(mix) - set(DEFAULT_MIX)
    if unknown:
        raise ValueError(f"unknown query families {sorted(unknown)}; "
                         f"known: {sorted(DEFAULT_MIX)}")
    families = sorted(k for k, w in mix.items() if w > 0)
    if not families:
        raise ValueError("query mix has no positive weights")
    weights = np.array([mix[k] for k in families], dtype=np.float64)
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    vp_weights = _zipf_weights(n_viewpoints, zipf_s)
    # shuffle which viewpoint is "rank 1" so popularity isn't always vp 0
    vp_order = rng.permutation(n_viewpoints)

    queries: List[Query] = []
    while len(queries) < n:
        fam = families[int(rng.choice(len(families), p=weights))]
        if fam == "viewport":
            vp = int(vp_order[int(rng.choice(n_viewpoints, p=vp_weights))])
            zoom = float(rng.uniform(1.0, 3.0))
            pan = tuple(float(v) for v in
                        rng.uniform(-0.1, 0.1, size=3) * np.array(shape))
            queries.append(ViewportQuery(vp, n_viewpoints=n_viewpoints,
                                         zoom=zoom, pan=pan))
        elif fam == "orbit":
            start = int(rng.integers(n_viewpoints))
            length = int(rng.integers(2, max(3, n_viewpoints // 2 + 1)))
            zoom = float(rng.uniform(1.0, 2.0))
            for step in range(length):
                if len(queries) >= n:
                    break
                vp = (start + step) % n_viewpoints
                queries.append(ViewportQuery(vp, n_viewpoints=n_viewpoints,
                                             zoom=zoom))
        elif fam == "bbox":
            if rng.random() < 1 / 3:
                # elongated: thin in two axes, long in the third
                axis = int(rng.integers(3))
                lo, hi = [], []
                for a, extent in enumerate(shape):
                    span = extent if a == axis else max(1, extent // 8)
                    size = int(rng.integers(max(1, span // 2), span + 1))
                    start = int(rng.integers(0, extent - size + 1))
                    lo.append(start)
                    hi.append(start + size)
            else:
                lo, hi = [], []
                for extent in shape:
                    size = int(rng.integers(max(1, extent // 8),
                                            max(2, extent // 2)))
                    start = int(rng.integers(0, extent - size + 1))
                    lo.append(start)
                    hi.append(start + size)
            queries.append(BBoxQuery(tuple(lo), tuple(hi)))
        elif fam == "slab":
            axis = int(rng.integers(3))
            extent = shape[axis]
            thick = int(rng.integers(1, max(2, extent // 16)))
            start = int(rng.integers(0, extent - thick + 1))
            queries.append(SlabQuery(axis, start, start + thick))
        else:  # ray
            center = np.array(shape, dtype=np.float64) / 2.0
            origin = tuple(float(v) for v in
                           center + rng.uniform(-0.25, 0.25, size=3)
                           * np.array(shape))
            direction = tuple(float(v) for v in rng.normal(size=3))
            n_samples = int(rng.integers(16, 129))
            queries.append(RayQuery(origin, direction, n_samples=n_samples,
                                    step=float(rng.uniform(0.5, 2.0))))
    return queries[:n]


def arrival_times(n: int, *, profile: str = "steady", rate: float = 100.0,
                  seed: int = 0, burst_size: int = 8,
                  burst_rate: float = 2.0) -> np.ndarray:
    """Cumulative arrival offsets (seconds) for ``n`` queries.

    ``"steady"`` draws exponential inter-arrivals at ``rate`` queries
    per second (a Poisson process).  ``"burst"`` groups queries into
    bursts of ~``burst_size`` arriving back-to-back, with the *bursts*
    Poisson at ``burst_rate`` per second — the arrival shape of a user
    dragging a viewport then pausing.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if rate <= 0 or burst_rate <= 0:
        raise ValueError("rates must be positive")
    rng = np.random.default_rng(seed)
    if profile == "steady":
        gaps = rng.exponential(1.0 / rate, size=n)
        return np.cumsum(gaps)
    if profile == "burst":
        times: List[float] = []
        t = 0.0
        while len(times) < n:
            t += float(rng.exponential(1.0 / burst_rate))
            size = max(1, int(rng.poisson(burst_size)))
            # within a burst, queries land ~1 ms apart
            for k in range(size):
                if len(times) >= n:
                    break
                times.append(t + k * 1e-3)
        return np.asarray(times[:n])
    raise ValueError(f"unknown arrival profile {profile!r}; "
                     "known: ['steady', 'burst']")
