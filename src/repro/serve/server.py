"""Async volume server: bbox/slab/viewport/ray queries over a ChunkStore.

The paper's thesis is that a space-filling-curve layout turns spatial
locality into *address* locality.  A serving workload is where that
pays twice: the same placement that kept stencil neighborhoods on one
cache line keeps a viewport's chunks in one file segment, so a query
touches fewer segments (less I/O) and the hot-segment cache sees a
tighter reuse pattern (more hits).

:class:`VolumeServer` answers four query shapes:

* :class:`BBoxQuery` — a dense axis-aligned subvolume;
* :class:`SlabQuery` — a thickness-1..k slice along one axis (the
  degenerate bbox every viewer scrubs through);
* :class:`ViewportQuery` — the subvolume an orbiting camera sees,
  derived from the volrend kernel's :func:`~repro.kernels.camera.
  orbit_camera` so "viewpoint 3 of 8" means the same geometry here and
  in the renderer;
* :class:`RayQuery` — point samples along a ray (picking/probing).

Concurrency model: :meth:`query` is an ``asyncio`` coroutine; a
semaphore bounds in-flight queries and each query's *processing* is
synchronous inside one trace span (the tracer's span stack must not
interleave, so the awaits all happen before the span opens).  Cache
and store state are only mutated inside that synchronous section, so
no locks are needed and results are deterministic for a given arrival
order.

Resilience: constructed with a :class:`~repro.serve.reliability.
ReliabilityConfig`, the server adds per-query deadlines (checked
cooperatively between segment reads), retry-policy-driven re-attempts
(each with a fresh deadline), per-shard circuit breaking and hedged
replica reads on the store path, and bounded admission in
:meth:`session` — queries beyond ``max_inflight`` are *shed* with a
typed :class:`~repro.serve.reliability.QueryRejected`, never hung.
Without a config every failure raises, exactly as before.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from .fuzz import ScheduleFuzzer

import numpy as np

from ..instrument import trace as _trace
from ..kernels.camera import orbit_camera
from .cache import make_cache
from .reliability import (
    Deadline,
    DeadlineExceeded,
    QueryRejected,
    ReadPolicy,
    ReliabilityConfig,
)
from .store import ChunkStore

__all__ = ["BBoxQuery", "SlabQuery", "ViewportQuery", "RayQuery",
           "QueryResult", "VolumeServer"]


# -- query shapes -------------------------------------------------------------

@dataclass(frozen=True)
class BBoxQuery:
    """Dense subvolume over the half-open voxel box ``[lo, hi)``."""
    lo: Tuple[int, int, int]
    hi: Tuple[int, int, int]

    kind = "bbox"


@dataclass(frozen=True)
class SlabQuery:
    """Slices ``start..stop`` (half-open) along ``axis`` (0=x, 1=y, 2=z)."""
    axis: int
    start: int
    stop: int

    kind = "slab"


@dataclass(frozen=True)
class ViewportQuery:
    """What viewpoint ``viewpoint`` of an ``n_viewpoints`` orbit sees.

    ``zoom`` scales the viewed box (1.0 = whole volume, 2.0 = half
    extent) and ``pan`` shifts its center in voxels; both model a user
    zooming and dragging while the orbit geometry stays the renderer's.
    """
    viewpoint: int
    n_viewpoints: int = 8
    zoom: float = 1.0
    pan: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    kind = "viewport"


@dataclass(frozen=True)
class RayQuery:
    """``n_samples`` nearest-voxel samples from ``origin`` along
    ``direction``, ``step`` voxels apart."""
    origin: Tuple[float, float, float]
    direction: Tuple[float, float, float]
    n_samples: int = 64
    step: float = 1.0

    kind = "ray"


Query = Union[BBoxQuery, SlabQuery, ViewportQuery, RayQuery]


# -- results ------------------------------------------------------------------

@dataclass
class QueryResult:
    """A query's payload plus the cost accounting the bench aggregates."""
    query: Query
    data: np.ndarray
    #: chunks the query *needed* (placement-independent)
    chunks_needed: int
    #: segments the query touched (placement-DEPENDENT — the metric)
    segments_touched: int
    #: bytes read from segments (touched × segment size)
    bytes_touched: int
    #: bytes in the returned payload
    bytes_returned: int
    #: wall-clock processing latency, seconds (perf_counter)
    latency_s: float
    #: cache hits / misses attributable to this query
    cache_hits: int = 0
    cache_misses: int = 0
    #: how many attempts it took (1 = first try; >1 means retries fired)
    attempts: int = 1

    ok = True

    @property
    def utilization(self) -> float:
        """Returned / touched bytes — how much of the I/O was useful."""
        return self.bytes_returned / self.bytes_touched \
            if self.bytes_touched else 1.0


# -- the server ---------------------------------------------------------------

class VolumeServer:
    """Serve spatial queries over a :class:`ChunkStore`.

    ``cache`` is a cache spec string (``"lru:capacity=64"``,
    ``"none"``) or an already-built cache object.  All reads go
    through the cache; its ``access_log`` is the segment stream the
    memsim cross-check (:mod:`repro.serve.validate`) replays.
    """

    def __init__(self, store: ChunkStore,
                 cache: Union[str, None, object] = "lru:capacity=64",
                 reliability: Optional[ReliabilityConfig] = None,
                 reader=None):
        self.store = store
        self.cache = cache if hasattr(cache, "get") else make_cache(cache)
        self.reliability = reliability
        self._policy = ReadPolicy(reliability) \
            if reliability is not None else None
        # ``reader(seg, policy) -> segment array`` replaces the static
        # store read on cache misses — a cluster injects its versioned
        # shard-map routing here without the server knowing about maps
        self._reader = reader
        self._inflight = 0
        self.queries_served = 0

    # -- geometry helpers ----------------------------------------------------

    def _slab_bbox(self, q: SlabQuery) -> Tuple[Tuple[int, ...],
                                                Tuple[int, ...]]:
        if not 0 <= q.axis <= 2:
            raise ValueError(f"slab axis must be 0..2, got {q.axis}")
        lo = [0, 0, 0]
        hi = list(self.store.shape)
        lo[q.axis] = q.start
        hi[q.axis] = q.stop
        return tuple(lo), tuple(hi)

    def _viewport_bbox(self, q: ViewportQuery) -> Tuple[Tuple[int, ...],
                                                        Tuple[int, ...]]:
        """Axis-aligned voxel box for an orbit viewpoint.

        The camera basis comes from the volrend kernel; the viewed
        region is an oriented box centered on ``center + pan`` whose
        half-extents shrink with ``zoom``, and its eight corners are
        clipped to the volume to yield the AABB actually fetched.
        """
        if q.zoom <= 0:
            raise ValueError(f"zoom must be positive, got {q.zoom}")
        shape = self.store.shape
        cam = orbit_camera(shape, q.viewpoint, n_viewpoints=q.n_viewpoints)
        eye = np.asarray(cam.eye, dtype=np.float64)
        center = np.asarray(cam.center, dtype=np.float64) \
            + np.asarray(q.pan, dtype=np.float64)
        view = center - eye
        view /= np.linalg.norm(view)
        up = np.asarray(cam.up, dtype=np.float64)
        right = np.cross(view, up)
        right /= np.linalg.norm(right)
        true_up = np.cross(right, view)
        # the visible region is the oriented cube inscribed in the view
        # sphere of radius max_extent/(2*zoom): half-edge = r/sqrt(3),
        # so zooming in shrinks the fetched box isotropically instead of
        # inflating it by the AABB of a volume-sized oriented cube
        r = float(np.array(shape, dtype=np.float64).max()) / (2.0 * q.zoom)
        h = r / np.sqrt(3.0)
        corners = []
        for sr in (-1.0, 1.0):
            for su in (-1.0, 1.0):
                for sv in (-1.0, 1.0):
                    corners.append(center + h * (sr * right + su * true_up
                                                 + sv * view))
        pts = np.asarray(corners)
        lo = np.floor(pts.min(axis=0)).astype(np.int64)
        hi = np.ceil(pts.max(axis=0)).astype(np.int64)
        lo = np.maximum(lo, 0)
        hi = np.minimum(hi, np.asarray(shape, dtype=np.int64))
        # a fully off-volume pan still yields a valid 1-voxel box
        hi = np.maximum(hi, lo + 1)
        hi = np.minimum(hi, np.asarray(shape, dtype=np.int64))
        lo = np.minimum(lo, hi - 1)
        return tuple(int(v) for v in lo), tuple(int(v) for v in hi)

    def _ray_points(self, q: RayQuery) -> np.ndarray:
        d = np.asarray(q.direction, dtype=np.float64)
        norm = np.linalg.norm(d)
        if norm == 0:
            raise ValueError("ray direction must be non-zero")
        d = d / norm
        o = np.asarray(q.origin, dtype=np.float64)
        t = np.arange(q.n_samples, dtype=np.float64) * q.step
        pts = o[None, :] + t[:, None] * d[None, :]
        idx = np.rint(pts).astype(np.int64)
        shape = np.asarray(self.store.shape, dtype=np.int64)
        inside = np.all((idx >= 0) & (idx < shape[None, :]), axis=1)
        return idx[inside]

    # -- the synchronous core ------------------------------------------------

    def _load_segment(self, seg: int) -> np.ndarray:
        """The cache's miss loader: a policy-routed store read."""
        if self._reader is not None:
            return self._reader(seg, self._policy)
        return self.store.read_segment(seg, policy=self._policy)

    def _fetch(self, seg: int) -> np.ndarray:
        """One cached segment fetch, deadline-checked and rollback-safe.

        The deadline check sits *before* the cache access — between
        segment fetches is the only place synchronous processing can
        honor a budget.  When the miss loader raises (deadline,
        exhausted failover), the cache forgets the aborted access so
        its log and counters stay bit-for-bit consistent with the
        memsim cross-check on the retry.
        """
        if self._policy is not None:
            self._policy.check_deadline()
        try:
            return self.cache.get(seg, self._load_segment)
        except BaseException:
            self.cache.forget_failed_access(seg)
            raise

    def _process(self, q: Query, attempt: int = 1) -> QueryResult:
        if not isinstance(q, (BBoxQuery, SlabQuery, ViewportQuery,
                              RayQuery)):
            raise TypeError(f"unknown query type {type(q).__name__}")
        store = self.store
        cache = self.cache
        if self._policy is not None:
            # a fresh budget per attempt: retrying re-arms the deadline
            self._policy.deadline = Deadline(self.reliability.deadline_s)
        hits0, misses0 = cache.hits, cache.misses
        t0 = time.perf_counter()
        with _trace.span("serve.query", kind=q.kind, order=store.order) as sp:
            if isinstance(q, BBoxQuery):
                lo, hi = q.lo, q.hi
            elif isinstance(q, SlabQuery):
                lo, hi = self._slab_bbox(q)
            elif isinstance(q, ViewportQuery):
                lo, hi = self._viewport_bbox(q)
            else:
                lo = hi = None

            if isinstance(q, RayQuery):
                idx = self._ray_points(q)
                data, needed, segs = self._sample_points(idx)
            else:
                ids = store.chunks_for_bbox(lo, hi)
                needed = int(ids.size)
                segs = np.unique(store.segment_of_slot(store.slot_of[ids]))
                data = store.read_bbox(lo, hi, fetch=self._fetch)

            touched = int(segs.size)
            bytes_touched = sum(
                store.segment_chunk_count(int(s)) * store.chunk_bytes
                for s in segs)
            bytes_returned = int(data.nbytes)
            sp.set("chunks_needed", needed)
            sp.set("segments_touched", touched)
            sp.set("bytes_returned", bytes_returned)
        latency = time.perf_counter() - t0
        self.queries_served += 1
        return QueryResult(
            query=q, data=data, chunks_needed=needed,
            segments_touched=touched, bytes_touched=bytes_touched,
            bytes_returned=bytes_returned, latency_s=latency,
            cache_hits=cache.hits - hits0,
            cache_misses=cache.misses - misses0,
            attempts=attempt)

    def _sample_points(self, idx: np.ndarray):
        """Nearest-voxel samples at integer points ``idx`` (N×3)."""
        store = self.store
        if idx.size == 0:
            return (np.empty(0, dtype=store.dtype), 0,
                    np.empty(0, dtype=np.int64))
        cx, cy, cz = store.chunk_shape
        cids = store.chunk_ids(idx[:, 0] // cx, idx[:, 1] // cy,
                               idx[:, 2] // cz)
        uniq = np.unique(cids)
        segs = np.unique(store.segment_of_slot(store.slot_of[uniq]))
        out = np.empty(idx.shape[0], dtype=store.dtype)
        # visit chunks in file-slot order so the cache sees the
        # placement-ordered stream, same as bbox assembly
        order = np.argsort(store.slot_of[uniq], kind="stable")
        for cid in uniq[order]:
            slot = int(store.slot_of[cid])
            seg, off = divmod(slot, store.chunks_per_segment)
            block = self._fetch(seg)[off]
            sel = cids == cid
            ci, cj, ck = (int(v) for v in store.chunk_coords(int(cid)))
            pts = idx[sel]
            out[sel] = block[pts[:, 0] - ci * cx,
                             pts[:, 1] - cj * cy,
                             pts[:, 2] - ck * cz]
        return out, int(uniq.size), segs

    # -- attempt bookkeeping -------------------------------------------------

    def _attempt(self, q: Query, attempt: int):
        """Run one attempt; returns ``(result, None)`` or ``(None, error)``."""
        try:
            return self._process(q, attempt=attempt), None
        except DeadlineExceeded as exc:
            _trace.add("serve.reliability_deadline_miss", 1)
            return None, f"deadline: {exc}"
        except Exception as exc:
            return None, f"{type(exc).__name__}: {exc}"

    def _give_up(self, q: Query, error: str, attempts: int) -> QueryRejected:
        reason = "deadline" if error.startswith("deadline:") else "error"
        _trace.add("serve.reliability_failed", 1)
        return QueryRejected(query=q, reason=reason, error=error,
                             attempts=attempts)

    def _should_stop(self, error: str, attempt: int) -> bool:
        retry = self.reliability.retry
        return attempt > retry.max_retries or not retry.retryable(error)

    # -- public surface ------------------------------------------------------

    def serve(self, q: Query) -> Union[QueryResult, QueryRejected]:
        """Synchronous single-query entry point (tests, scripts).

        With a :class:`~repro.serve.reliability.ReliabilityConfig`
        attached, failures are retried per the policy and an exhausted
        query returns a typed :class:`QueryRejected`; without one,
        failures raise (the original contract).
        """
        if self.reliability is None:
            return self._process(q)
        attempt = 1
        while True:
            result, error = self._attempt(q, attempt)
            if result is not None:
                return result
            if self._should_stop(error, attempt):
                return self._give_up(q, error, attempt)
            _trace.add("serve.reliability_retries", 1)
            time.sleep(self.reliability.retry.backoff_seconds(attempt))
            attempt += 1

    async def query(self, q: Query,
                    semaphore: Optional[asyncio.Semaphore] = None
                    ) -> Union[QueryResult, QueryRejected]:
        """Answer one query; processing happens atomically in this task.

        The optional semaphore bounds concurrent in-flight queries.
        All awaiting happens *before* the trace span opens — the
        tracer's span stack requires each span to nest cleanly, so the
        processing inside it is synchronous.  Deadlines are therefore
        *cooperative*: the read path checks the attempt's budget
        between segment reads, which bounds a query without tearing a
        span open mid-stack the way task cancellation would.

        With reliability configured, a failed attempt backs off
        (yielding the loop to other queries), re-arms its deadline and
        retries per the policy; exhaustion returns
        :class:`QueryRejected` instead of raising.
        """
        if semaphore is None:
            await asyncio.sleep(0)
            return await self._query_with_retries(q)
        async with semaphore:
            return await self._query_with_retries(q)

    async def _query_with_retries(self, q: Query):
        if self.reliability is None:
            return self._process(q)
        attempt = 1
        while True:
            result, error = self._attempt(q, attempt)
            if result is not None:
                return result
            if self._should_stop(error, attempt):
                return self._give_up(q, error, attempt)
            _trace.add("serve.reliability_retries", 1)
            await asyncio.sleep(self.reliability.retry.backoff_seconds(attempt))
            attempt += 1

    async def session(self, queries: Sequence[Query], *,
                      concurrency: int = 4,
                      arrivals: Optional[Sequence[float]] = None,
                      time_scale: float = 1.0,
                      perturb: Optional["ScheduleFuzzer"] = None,
                      ) -> List[QueryResult]:
        """Serve a whole workload; results come back in *query order*.

        ``arrivals`` (seconds, from :func:`repro.serve.traffic.
        arrival_times`) delays each query's submission to model a
        traffic profile; ``time_scale`` compresses those delays so
        benches can replay an hour of arrivals in milliseconds.

        With reliability configured, admission is bounded: a query
        arriving while ``max_inflight`` others are queued or executing
        is shed immediately with a typed :class:`QueryRejected` —
        back-pressure by explicit refusal, never by unbounded queueing.
        Results still line up 1:1 with ``queries``, and the wrapping
        ``serve.session`` span rolls up p50/p99 latency and the
        shed/rejected tallies for the manifest.

        ``perturb`` (a :class:`~repro.serve.fuzz.ScheduleFuzzer`)
        injects extra event-loop yields at the scheduling seams —
        query arrival and post-admission — so the interleaving fuzzer
        can explore alternative schedules.  The seams sit strictly
        outside the admission-check/increment pair, which must stay
        atomic between yield points (a hook there would *create* the
        TOCTOU the design forbids).
        """
        rel = self.reliability

        async def one(i: int, q: Query) -> Tuple[int, QueryResult]:
            if arrivals is not None:
                delay = float(arrivals[i]) * time_scale
                if delay > 0:
                    await asyncio.sleep(delay)
            if perturb is not None:
                await perturb.point("arrival")
            if rel is not None and rel.max_inflight is not None \
                    and self._inflight >= rel.max_inflight:
                _trace.add("serve.reliability_shed", 1)
                return i, QueryRejected(
                    query=q, reason="shed",
                    error=f"admission queue full "
                          f"({rel.max_inflight} in flight)")
            self._inflight += 1
            try:
                if perturb is not None:
                    await perturb.point("admitted")
                return i, await self.query(q, sem)
            finally:
                self._inflight -= 1

        sem = asyncio.Semaphore(concurrency)
        with _trace.span("serve.session", n_queries=len(queries),
                         concurrency=concurrency) as sp:
            pairs = await asyncio.gather(
                *(one(i, q) for i, q in enumerate(queries)))
            results: List[Optional[QueryResult]] = [None] * len(queries)
            for i, r in pairs:
                results[i] = r
            ok = [r for r in results if r is not None and r.ok]
            rejected = [r for r in results if r is not None and not r.ok]
            if ok:
                lat_ms = np.sort([r.latency_s for r in ok]) * 1e3
                sp.set("p50_ms", float(np.percentile(lat_ms, 50)))
                sp.set("p99_ms", float(np.percentile(lat_ms, 99)))
            sp.set("ok", len(ok))
            sp.set("rejected", len(rejected))
            sp.set("shed", sum(1 for r in rejected if r.reason == "shed"))
            sp.set("deadline_misses",
                   sum(1 for r in rejected if r.reason == "deadline"))
        return results  # type: ignore[return-value]

    def serve_session(self, queries: Sequence[Query], *,
                      concurrency: int = 4,
                      arrivals: Optional[Sequence[float]] = None,
                      time_scale: float = 1.0) -> List[QueryResult]:
        """:meth:`session` without an event loop in hand."""
        return asyncio.run(self.session(
            queries, concurrency=concurrency, arrivals=arrivals,
            time_scale=time_scale))
