"""Elastic shard cluster: membership, rebalancing, anti-entropy.

PR 8 made one store survive faults; this module makes a *cluster* of
simulated shards survive shards dying and joining while queries keep
flowing — ROADMAP item 5's decomposition, operated.  Three pieces, all
deterministic and clock-free so a chaos run replays exactly:

* :class:`FailureDetector` — event-count heartbeats.  Time is the
  cluster's **event counter** (one tick per served query), never a
  wall clock: a shard that misses ``suspect_after`` ticks of
  heartbeats is *suspect*, ``dead_after`` ticks *dead*, and a
  returning shard walks a ``join_after``-tick *joining* grace before
  it is live again — the same denial-counting discipline as the
  PR-8 circuit breaker.
* :class:`ShardMap` — a **versioned**, pure-function placement: given
  the live-shard set, segment ``s``'s copies sit on the first
  ``replicas`` live shards walking the ring from the canonical
  primary ``s * ring // n_segments``.  With every shard live this is
  bit-for-bit the store's static placement, and primaries remain
  **contiguous curve-segment ranges** — the SFC property the paper's
  argument rides on (Walker & Skjellum, arXiv:2307.07828): a
  membership change moves only the dead/joined shard's contiguous
  ranges, which :func:`compare_rebalance` pins against a
  block-Cartesian strawman re-decomposition
  (:class:`~repro.distributed.decomposition.CartesianGridPartition`).
* :class:`ShardCluster` — ties them together.  Queries are served
  from the *current* map (old version stays valid until cutover)
  while the rebalancer re-replicates under-replicated segments from
  healthy siblings, a budgeted number of copies per tick; a
  background :class:`Scrubber` re-verifies sidecars across replicas
  and repairs divergence under its own budget.  Every byte served is
  sidecar-verified — migration never serves a wrong byte.

Membership chaos is driven by ``shard-kill`` / ``shard-join`` /
``shard-flap`` fault specs keyed on the event counter
(:mod:`repro.resilience.faults`), or an explicit ``schedule``.
``scripts/chaos_cluster.py`` is the CI gate: rolling kills plus a
rejoin must serve 100% of queries byte-identical to the undisturbed
run with the exact memsim crosscheck intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..distributed.decomposition import CartesianGridPartition
from ..instrument import trace as _trace
from ..resilience import artifacts as _artifacts
from ..resilience import faults as _faults
from .reliability import ReliabilityConfig
from .server import VolumeServer
from .store import ChunkStore

__all__ = [
    "FailureDetector",
    "ShardMap",
    "RebalanceComparison",
    "Scrubber",
    "ShardCluster",
    "compare_rebalance",
]


# -- versioned placement ------------------------------------------------------

@dataclass(frozen=True)
class ShardMap:
    """One version of the segment-range → shard placement.

    A pure function of the live set: no state, so any two nodes (or
    any two runs) with the same membership compute the same map.
    ``replicas_of`` walks the shard ring from the canonical primary
    and takes the first ``replicas`` live shards — with all shards
    live that *is* the store's static placement, and on a membership
    change only segments whose walk crossed the changed shard move.
    """

    version: int
    n_segments: int
    ring: int                  # total shard slots (store.shards)
    replicas: int
    live: Tuple[int, ...]      # sorted live shard ids

    def __post_init__(self):
        if not self.live:
            raise ValueError("a shard map needs at least one live shard")
        if any(not 0 <= s < self.ring for s in self.live):
            raise ValueError(f"live shards {self.live} outside ring "
                             f"0..{self.ring - 1}")
        if tuple(sorted(set(self.live))) != self.live:
            raise ValueError(f"live shards must be sorted and unique, "
                             f"got {self.live}")

    @classmethod
    def for_members(cls, store: ChunkStore, version: int,
                    members: Sequence[int]) -> "ShardMap":
        """The map ``version`` for live set ``members`` over ``store``."""
        return cls(version=version, n_segments=store.n_segments,
                   ring=store.shards, replicas=store.replicas,
                   live=tuple(sorted(set(int(s) for s in members))))

    @classmethod
    def initial(cls, store: ChunkStore) -> "ShardMap":
        """Version 0: every shard live (the static placement)."""
        return cls.for_members(store, 0, range(store.shards))

    def replicas_of(self, seg: int) -> Tuple[int, ...]:
        """Shards holding segment ``seg``, primary first."""
        live = set(self.live)
        want = min(self.replicas, len(self.live))
        start = seg * self.ring // max(1, self.n_segments)
        out: List[int] = []
        for k in range(self.ring):
            s = (start + k) % self.ring
            if s in live:
                out.append(s)
                if len(out) == want:
                    break
        return tuple(out)

    def primary_of(self, seg: int) -> int:
        return self.replicas_of(seg)[0]

    @cached_property
    def _placements(self) -> FrozenSet[Tuple[int, int]]:
        return frozenset((seg, s) for seg in range(self.n_segments)
                         for s in self.replicas_of(seg))

    def placements(self) -> FrozenSet[Tuple[int, int]]:
        """Every ``(segment, shard)`` copy this map calls for."""
        return self._placements

    def segments_of(self, shard: int) -> List[int]:
        """Segments with a copy on ``shard`` (any replica role)."""
        return sorted(seg for seg, s in self.placements() if s == shard)

    def primary_ranges(self) -> List[Tuple[int, int, int]]:
        """Contiguous primary runs as ``(shard, start, stop)`` triples.

        The SFC property made visible: each run is a contiguous span
        of the curve order, so the list has at most one run per live
        shard (plus a possible ring wrap).
        """
        runs: List[Tuple[int, int, int]] = []
        for seg in range(self.n_segments):
            p = self.primary_of(seg)
            if runs and runs[-1][0] == p and runs[-1][2] == seg:
                runs[-1] = (p, runs[-1][1], seg + 1)
            else:
                runs.append((p, seg, seg + 1))
        return runs

    def moved_from(self, old: "ShardMap") -> FrozenSet[Tuple[int, int]]:
        """Copies this map calls for that ``old`` did not — the
        segment copies a rebalance must (re)place."""
        return self.placements() - old.placements()


# -- strawman comparison ------------------------------------------------------

@dataclass(frozen=True)
class RebalanceComparison:
    """Data movement of one membership change, SFC vs block-Cartesian.

    ``sfc_moved`` counts segment copies the curve-range map places
    anew; ``cartesian_moved`` counts the chunk copies a rigid
    block-Cartesian re-decomposition of the same chunk grid moves,
    in segment-equivalents (chunks / chunks_per_segment) so the two
    schemes price movement in the same unit.
    """

    old_live: Tuple[int, ...]
    new_live: Tuple[int, ...]
    sfc_moved: int
    cartesian_moved: float


def _cartesian_placements(grid_shape: Sequence[int], ring: int,
                          replicas: int, live: Sequence[int]
                          ) -> Set[Tuple[int, int]]:
    """Chunk copies a block-Cartesian decomposition places on ``live``.

    The strawman: cut the chunk grid into a rigid
    :class:`~repro.distributed.decomposition.CartesianGridPartition`
    box grid (rank ``i`` = the i-th live shard), replicas on ring
    successors *within* the live set.  The box topology is a function
    of the rank count, so every membership change recuts the grid and
    most chunks change owner — exactly why contiguous curve ranges
    move less.
    """
    live = sorted(live)
    grid = tuple(int(g) for g in grid_shape)
    part = CartesianGridPartition(grid, len(live))
    gx, gy, gz = grid
    want = min(replicas, len(live))
    placed: Set[Tuple[int, int]] = set()
    for bk in range(gz):
        for bj in range(gy):
            for bi in range(gx):
                chunk = bi + gx * (bj + gy * bk)
                i = part.rank_of(bi, bj, bk)
                for r in range(want):
                    placed.add((chunk, live[(i + r) % len(live)]))
    return placed


def compare_rebalance(store: ChunkStore, old: ShardMap,
                      new: ShardMap) -> RebalanceComparison:
    """Price one membership change under both placement schemes."""
    sfc = len(new.moved_from(old))
    cart_old = _cartesian_placements(store.grid_shape, old.ring,
                                     old.replicas, old.live)
    cart_new = _cartesian_placements(store.grid_shape, new.ring,
                                     new.replicas, new.live)
    cart = len(cart_new - cart_old) / float(store.chunks_per_segment)
    return RebalanceComparison(old_live=old.live, new_live=new.live,
                               sfc_moved=sfc, cartesian_moved=cart)


# -- failure detection --------------------------------------------------------

class FailureDetector:
    """Deterministic, clock-free per-shard failure detection.

    Time is an **event counter** the cluster advances; a heartbeat is
    a shard's presence in the tick's heartbeat set.  States walk
    ``alive → suspect → dead → joining → alive``: ``suspect_after``
    missed ticks suspects a shard (grace — it still serves reads and
    counts for replication), ``dead_after`` kills it (its segments
    are re-replicated), and a returning shard must heartbeat
    ``join_after`` consecutive ticks before it is live again, so one
    flapping heartbeat never whipsaws the map.  No wall clock
    anywhere: the same event sequence walks the same state sequence,
    which is what lets the chaos gate pin byte-identical replays.
    """

    STATES = ("alive", "suspect", "dead", "joining")

    def __init__(self, shards: Sequence[int], *, suspect_after: int = 3,
                 dead_after: int = 6, join_after: int = 2):
        if suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, "
                             f"got {suspect_after}")
        if dead_after <= suspect_after:
            raise ValueError(f"dead_after ({dead_after}) must exceed "
                             f"suspect_after ({suspect_after})")
        if join_after < 1:
            raise ValueError(f"join_after must be >= 1, got {join_after}")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.join_after = join_after
        self.state: Dict[int, str] = {int(s): "alive" for s in shards}
        self.last_seen: Dict[int, int] = {int(s): 0 for s in shards}
        self._join_streak: Dict[int, int] = {}

    def observe(self, event: int,
                heartbeats: Set[int]) -> List[Tuple[int, str, str]]:
        """Advance one tick; returns ``(shard, old, new)`` transitions."""
        transitions: List[Tuple[int, str, str]] = []

        def move(shard: int, new: str) -> None:
            old = self.state[shard]
            if old != new:
                self.state[shard] = new
                transitions.append((shard, old, new))

        for shard in sorted(self.state):
            if shard in heartbeats:
                state = self.state[shard]
                if state == "dead":
                    self._join_streak[shard] = 1
                    move(shard, "joining")
                elif state == "joining":
                    streak = self._join_streak.get(shard, 0) + 1
                    self._join_streak[shard] = streak
                    if streak >= self.join_after:
                        move(shard, "alive")
                elif state == "suspect":
                    move(shard, "alive")  # recovered inside the grace
                self.last_seen[shard] = event
            else:
                gap = event - self.last_seen[shard]
                state = self.state[shard]
                if state == "joining":
                    # a flap during the join grace goes straight back
                    move(shard, "dead")
                elif state == "alive" and gap >= self.suspect_after:
                    move(shard, "suspect")
                elif state == "suspect" and gap >= self.dead_after:
                    move(shard, "dead")
        return transitions

    def members(self) -> Set[int]:
        """Shards the map may place copies on (alive + the suspect
        grace; joining shards wait out their streak)."""
        return {s for s, st in self.state.items()
                if st in ("alive", "suspect")}


# -- anti-entropy -------------------------------------------------------------

class Scrubber:
    """Budget-bounded background re-verification of replica sidecars.

    A deterministic cursor walks the current map's placements on
    shards the detector believes *alive*, ``budget`` copies per tick:
    a copy that fails verification is quarantined and repaired from a
    live sibling (``serve.scrub_repaired``), and a copy that verifies
    against *its own* sidecar but disagrees with the primary's digest
    — silent divergence no read would catch until routed there — is
    rewritten from the primary (``serve.scrub_divergent``).  Every
    full lap over the placements bumps ``serve.scrub_passes``.
    """

    def __init__(self, cluster: "ShardCluster"):
        self.cluster = cluster
        self._cursor = 0
        self.checked = 0
        self.repaired = 0
        self.divergent = 0
        self.passes = 0

    def run(self, budget: int) -> None:
        cl = self.cluster
        if budget <= 0:
            return
        alive = {s for s, st in cl.detector.state.items() if st == "alive"}
        work = sorted((seg, s) for seg, s in cl.map.placements()
                      if s in alive)
        if not work:
            return
        for _ in range(budget):
            if self._cursor >= len(work):
                self._cursor = 0
                self.passes += 1
                _trace.add("serve.scrub_passes", 1)
            seg, shard = work[self._cursor]
            self._cursor += 1
            self._check(seg, shard, alive)

    def _check(self, seg: int, shard: int, alive: Set[int]) -> None:
        cl = self.cluster
        store = cl.store
        path = store.path_on_shard(seg, shard)
        self.checked += 1
        _trace.add("serve.scrub_checked", 1)
        placements = cl.map.replicas_of(seg)
        peers = [s for s in placements if s != shard and s in alive]
        try:
            record = _artifacts.verify_artifact(path, require_sidecar=True)
        except (_artifacts.ArtifactIntegrityError, OSError):
            self._repair_from(seg, shard, peers)
            return
        primary = placements[0]
        if shard == primary or primary not in alive:
            return
        mine = record.get("sha256") if record else None
        prec = _artifacts.read_sidecar(store.path_on_shard(seg, primary))
        theirs = prec.get("sha256") if prec else None
        if mine is not None and theirs is not None and mine != theirs:
            self.divergent += 1
            _trace.add("serve.scrub_divergent", 1)
            self._repair_from(seg, shard, [primary])

    def _repair_from(self, seg: int, shard: int,
                     sources: List[int]) -> None:
        cl = self.cluster
        if not sources:
            return  # no live sibling; the read path's rebuild is the net
        try:
            payload = cl.store.read_replica_bytes(seg, sources)
        except (_artifacts.ArtifactIntegrityError,
                _faults.InjectedFault, OSError):
            return  # sibling unhealthy too; a later lap retries
        cl.store.write_replica_on(seg, shard, payload)
        cl.placed[seg].add(shard)
        self.repaired += 1
        _trace.add("serve.scrub_repaired", 1)


# -- the cluster --------------------------------------------------------------

class ShardCluster:
    """A simulated elastic shard cluster over one :class:`ChunkStore`.

    Wraps a :class:`~repro.serve.server.VolumeServer` whose cache-miss
    reads route through the cluster's **versioned shard map** instead
    of the static placement.  One :meth:`tick` per served query
    advances the event counter, applies any scheduled membership
    chaos, runs the failure detector, performs up to
    ``rebalance_budget`` rebalance moves and ``scrub_budget`` scrub
    checks — all deterministic, so a run replays bit-for-bit.

    Shard outages are *process* outages, not disk loss: a killed
    shard's files persist, so :attr:`placed` (the on-disk copy map)
    keeps them and a rejoining shard contributes its old copies back
    at zero moves — the scrubber, not the mover, re-validates them.

    ``schedule`` — explicit ``(event, "kill"|"join", shard)`` triples;
    ``shard-kill``/``shard-join``/``shard-flap`` fault specs keyed on
    ``at=`` compose with it through ``REPRO_FAULTS``.
    """

    def __init__(self, store: ChunkStore, *,
                 cache="lru:capacity=64",
                 reliability: Optional[ReliabilityConfig] = None,
                 suspect_after: int = 3, dead_after: int = 6,
                 join_after: int = 2,
                 rebalance_budget: int = 4, scrub_budget: int = 0,
                 schedule: Optional[Sequence[Tuple[int, str, int]]] = None):
        if store.shards < 2:
            raise ValueError(
                f"a cluster needs >= 2 shards, got {store.shards}")
        if rebalance_budget < 1:
            raise ValueError(f"rebalance_budget must be >= 1, "
                             f"got {rebalance_budget}")
        self.store = store
        self.detector = FailureDetector(
            range(store.shards), suspect_after=suspect_after,
            dead_after=dead_after, join_after=join_after)
        self.map = ShardMap.initial(store)
        self.target: Optional[ShardMap] = None
        self.rebalance_budget = rebalance_budget
        self.scrub_budget = scrub_budget
        self.schedule = sorted(schedule or [])
        # ground-truth outages; shared with the store so reads routed
        # to a downed shard fail exactly like a shard-down fault
        self.down = store.down_shards
        # on-disk copies per segment (survives outages; see docstring)
        self.placed: Dict[int, Set[int]] = {
            seg: {store.shard_of_segment(seg, r)
                  for r in range(store.replicas)}
            for seg in range(store.n_segments)}
        self._pending_moves: List[Tuple[int, int]] = []
        self.events = 0
        self.suspects = 0
        self.deaths = 0
        self.joins = 0
        self.rebalances = 0
        self.cutovers = 0
        self.segments_moved = 0
        self.comparisons: List[RebalanceComparison] = []
        #: (event, under-replicated segment count) after every tick
        self.under_replicated_history: List[Tuple[int, int]] = []
        self.scrubber = Scrubber(self)
        self.server = VolumeServer(store, cache=cache,
                                   reliability=reliability,
                                   reader=self._read_segment)

    # -- membership ground truth ---------------------------------------------

    def kill(self, shard: int) -> None:
        """Take ``shard`` down (simulated outage; its disk persists)."""
        if not 0 <= shard < self.store.shards:
            raise ValueError(f"shard {shard} outside 0.."
                             f"{self.store.shards - 1}")
        self.down.add(shard)

    def revive(self, shard: int) -> None:
        """Bring ``shard`` back up (it must re-earn liveness)."""
        self.down.discard(shard)

    # -- the tick -------------------------------------------------------------

    def tick(self) -> None:
        """Advance one event: chaos, detection, rebalance, scrub."""
        self.events += 1
        _trace.add("serve.cluster_ticks", 1)
        for action, shard in self._actions_at(self.events):
            if action == "kill":
                self.kill(shard)
            elif action == "join":
                self.revive(shard)
            else:
                raise ValueError(f"unknown schedule action {action!r}")
        heartbeats = {s for s in range(self.store.shards)
                      if s not in self.down}
        membership_changed = False
        for shard, old, new in self.detector.observe(self.events,
                                                     heartbeats):
            if new == "suspect":
                self.suspects += 1
                _trace.add("serve.cluster_suspects", 1)
            elif new == "dead":
                self.deaths += 1
                _trace.add("serve.cluster_deaths", 1)
                membership_changed = True
            elif new == "alive" and old == "joining":
                self.joins += 1
                _trace.add("serve.cluster_joins", 1)
                membership_changed = True
        if membership_changed:
            self._start_rebalance()
        self._advance_rebalance()
        self.scrubber.run(self.scrub_budget)
        self.under_replicated_history.append(
            (self.events, self.under_replicated()))

    def _actions_at(self, event: int) -> List[Tuple[str, int]]:
        actions = [(a, s) for e, a, s in self.schedule if e == event]
        plan = _faults.active_plan()
        if plan:
            actions.extend(plan.cluster_actions(event))
        return actions

    # -- rebalancing ----------------------------------------------------------

    def _start_rebalance(self) -> None:
        """Retarget the map at the detector's membership.

        The serving map stays at its current version until the moves
        drain — queries keep routing off the old map mid-migration —
        and a second membership change simply retargets: pending
        moves are recomputed against the newer map.
        """
        base = self.target.version if self.target is not None \
            else self.map.version
        target = ShardMap.for_members(self.store, base + 1,
                                      self.detector.members())
        if target.placements() == self.map.placements():
            # back to the serving placement (a flap that recovered):
            # cancel any half-done migration instead of versioning
            self.target = None
            self._pending_moves = []
            return
        comparison = compare_rebalance(self.store, self.map, target)
        self.comparisons.append(comparison)
        self.rebalances += 1
        _trace.add("serve.cluster_rebalances", 1)
        _trace.add("serve.cluster_moves_sfc", comparison.sfc_moved)
        _trace.add("serve.cluster_moves_cartesian",
                   comparison.cartesian_moved)
        self.target = target
        self._pending_moves = sorted(
            (seg, shard) for seg, shard in target.placements()
            if shard not in self.placed[seg])

    def _advance_rebalance(self) -> None:
        """Do up to ``rebalance_budget`` copy moves, then cut over."""
        if self.target is None:
            return
        budget = self.rebalance_budget
        while budget > 0 and self._pending_moves:
            seg, dest = self._pending_moves[0]
            self._move_copy(seg, dest)
            self._pending_moves.pop(0)
            budget -= 1
        if not self._pending_moves:
            self.map = self.target
            self.target = None
            self.cutovers += 1
            _trace.add("serve.cluster_cutovers", 1)

    def _move_copy(self, seg: int, dest: int) -> None:
        """Re-replicate one segment copy onto ``dest`` from a healthy
        sibling (verified read → durable write), origin as last resort."""
        sources = sorted(s for s in self.placed[seg]
                         if s != dest and s not in self.down)
        try:
            payload = self.store.read_replica_bytes(seg, sources) \
                if sources else None
        except (_artifacts.ArtifactIntegrityError,
                _faults.InjectedFault, OSError):
            payload = None
        if payload is None:
            # every sibling copy is unreachable or rotted: the origin
            # is the truth (counted as a rebuild, like the read path)
            assert self.target is not None
            targets = [s for s in self.target.replicas_of(seg)
                       if s not in self.down] or [dest]
            self.store.rebuild_segment(seg, shards=targets)
            self.placed[seg].update(targets)
        else:
            self.store.write_replica_on(seg, dest, payload)
            self.placed[seg].add(dest)
        self.segments_moved += 1
        _trace.add("serve.cluster_segments_moved", 1)

    # -- the routed read path -------------------------------------------------

    def _read_segment(self, seg: int, policy) -> np.ndarray:
        """The server's miss loader: map-routed, failover-protected.

        Candidates are the serving map's placements (old version until
        cutover) followed by any other on-disk copies — so a query
        mid-migration fails over from a dead primary to whichever
        sibling or freshly-moved copy verifies.  The store's
        ``locations`` path does the sidecar verification, read-repair
        and (last-resort) rebuild; a wrong byte is never returned.
        """
        primary = list(self.map.replicas_of(seg))
        extras = sorted(self.placed.get(seg, set()) - set(primary))
        rebuilt_before = self.store.segments_rebuilt
        arr = self.store.read_segment(seg, policy=policy,
                                      locations=primary + extras)
        if self.store.segments_rebuilt != rebuilt_before:
            # the store rebuilt onto the reachable candidates
            self.placed[seg].update(
                s for s in primary + extras if s not in self.down)
        return arr

    # -- health ---------------------------------------------------------------

    def under_replicated(self) -> int:
        """Segments with fewer live copies than the replication goal.

        Counted against the detector's view (alive + suspect): a
        not-yet-detected outage is not yet *known* under-replication,
        which is exactly the detection-lag window the history graphs.
        """
        members = self.detector.members()
        want = min(self.store.replicas, max(1, len(members)))
        count = 0
        for seg in range(self.store.n_segments):
            if len(self.placed[seg] & members) < want:
                count += 1
        return count

    def status(self) -> Dict[str, object]:
        """One-glance cluster health (the CLI's summary dict)."""
        return {
            "events": self.events,
            "map_version": self.map.version,
            "live": sorted(self.detector.members()),
            "states": dict(sorted(self.detector.state.items())),
            "migrating": self.target is not None,
            "pending_moves": len(self._pending_moves),
            "under_replicated": self.under_replicated(),
            "deaths": self.deaths,
            "joins": self.joins,
            "rebalances": self.rebalances,
            "cutovers": self.cutovers,
            "segments_moved": self.segments_moved,
            "scrub_checked": self.scrubber.checked,
            "scrub_repaired": self.scrubber.repaired,
            "scrub_divergent": self.scrubber.divergent,
        }

    # -- sessions -------------------------------------------------------------

    def _last_scheduled_event(self) -> int:
        last = max((e for e, _, _ in self.schedule), default=0)
        plan = _faults.active_plan()
        for spec in plan.specs:
            if spec.mode in _faults.CLUSTER_MODES and spec.at >= 0:
                end = spec.at
                if spec.mode == "shard-flap":
                    end += max(1, spec.down)
                last = max(last, end)
        return last

    def settle(self, max_ticks: int = 256) -> None:
        """Tick until migrations drain and the detector is quiescent.

        Bounded by ``max_ticks`` so a mis-scheduled scenario fails
        loudly (still migrating) instead of spinning forever.
        """
        for _ in range(max_ticks):
            detector_busy = any(
                st in ("suspect", "joining")
                for st in self.detector.state.values())
            if self.target is None and not self._pending_moves \
                    and not detector_busy \
                    and self.events >= self._last_scheduled_event():
                return
            self.tick()
        raise RuntimeError(
            f"cluster failed to settle in {max_ticks} ticks: "
            f"{self.status()}")

    def serve_session(self, queries: Sequence[object]) -> List[object]:
        """Serve ``queries`` in order, one tick per query, then settle.

        Sequential on purpose: the event counter *is* the clock, and
        one query per tick makes the interleaving of chaos, detection,
        rebalancing and serving fully deterministic.  The wrapping
        ``serve.cluster`` span carries the membership/rebalance attrs
        the manifest's serve section picks up.
        """
        with _trace.span("serve.cluster", shards=self.store.shards,
                         replicas=self.store.replicas,
                         n_queries=len(queries)) as sp:
            results = []
            for q in queries:
                self.tick()
                results.append(self.server.serve(q))
            self.settle()
            ok = sum(1 for r in results if r.ok)
            sp.set("ok", ok)
            sp.set("rejected", len(results) - ok)
            sp.set("events", self.events)
            sp.set("map_version", self.map.version)
            sp.set("deaths", self.deaths)
            sp.set("joins", self.joins)
            sp.set("rebalances", self.rebalances)
            sp.set("cutovers", self.cutovers)
            sp.set("segments_moved", self.segments_moved)
            sp.set("under_replicated", self.under_replicated())
        return results
