"""Hot-segment cache for the volume server, priced by memsim.

The server keeps recently-read segments in memory behind a
fully-associative LRU — the same replacement policy
:mod:`repro.memsim` prices analytically.  That is the point: the
cache's hit/miss counters are **cross-checked bit-for-bit** against
the Mattson stack-distance histogram of the very access stream it
served (:mod:`repro.serve.validate`), so the serving layer's headline
hit rates inherit the simulator's credibility instead of asking to be
trusted.

Configuration is a spec string in the one registry grammar
(:func:`repro.core.registry.parse_spec`)::

    make_cache("lru:capacity=64")   # 64 segments hot
    make_cache("none")              # uncached baseline
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional

import numpy as np

from ..core.registry import parse_spec

__all__ = ["LRUCache", "NoCache", "make_cache"]


class LRUCache:
    """Fully-associative LRU over segment arrays, with exact counters.

    ``capacity`` is in *segments* (cache "lines"), matching the
    granularity :func:`repro.memsim.stackdist.fully_associative_spec`
    prices.  Counters: ``accesses``, ``hits``, ``misses``,
    ``evictions``; ``access_log`` records every requested segment id in
    order — the stream the memsim cross-check replays.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, "
                             f"got {capacity}")
        self.capacity = int(capacity)
        self._slots: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.access_log: List[int] = []

    def get(self, key: int, load: Callable[[int], np.ndarray]) -> np.ndarray:
        """Return the cached value for ``key``, loading on miss."""
        key = int(key)
        self.accesses += 1
        self.access_log.append(key)
        if key in self._slots:
            self.hits += 1
            self._slots.move_to_end(key)
            return self._slots[key]
        self.misses += 1
        value = load(key)
        self._slots[key] = value
        if len(self._slots) > self.capacity:
            self._slots.popitem(last=False)
            self.evictions += 1
        return value

    def forget_failed_access(self, key: int) -> None:
        """Roll back the trailing access after its loader raised.

        :meth:`get` counts the access (and the miss) *before* calling
        ``load`` — if the load then fails (deadline, exhausted
        failover) the log would record an access the cache never
        completed, and the bit-for-bit memsim cross-check would price
        a retry of the same segment as a hit the real cache never saw.
        The server's fetch wrapper calls this from its exception path;
        a failed load never inserts a slot, so popping the log entry
        and the two counters restores the exact pre-access state.
        """
        if self.access_log and self.access_log[-1] == int(key):
            self.access_log.pop()
            self.accesses -= 1
            self.misses -= 1

    def __len__(self) -> int:
        return len(self._slots)

    def counters(self) -> dict:
        """Counter snapshot (plain dict, JSON-friendly)."""
        return {"accesses": self.accesses, "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "capacity": self.capacity, "resident": len(self._slots)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LRUCache(capacity={self.capacity}, hits={self.hits}, "
                f"misses={self.misses})")


class NoCache:
    """The uncached baseline: every access loads; the log still records.

    Keeping the same interface (and the same ``access_log``) means the
    memsim cross-check and the bench's utilization metrics work
    identically with caching disabled.
    """

    capacity = 0

    def __init__(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.access_log: List[int] = []

    def get(self, key: int, load: Callable[[int], np.ndarray]) -> np.ndarray:
        key = int(key)
        self.accesses += 1
        self.misses += 1
        self.access_log.append(key)
        return load(key)

    def forget_failed_access(self, key: int) -> None:
        """Roll back the trailing access after its loader raised
        (see :meth:`LRUCache.forget_failed_access`)."""
        if self.access_log and self.access_log[-1] == int(key):
            self.access_log.pop()
            self.accesses -= 1
            self.misses -= 1

    def __len__(self) -> int:
        return 0

    def counters(self) -> dict:
        return {"accesses": self.accesses, "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "capacity": 0, "resident": 0}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NoCache(accesses={self.accesses})"


def make_cache(spec: Optional[str]):
    """Build a cache from a spec string: ``"lru:capacity=N"`` or ``"none"``.

    ``None`` and ``"none"`` both mean uncached.  The grammar is the
    registry's (:func:`~repro.core.registry.parse_spec`), so cache
    configs travel through CLI flags exactly like layout specs.
    """
    if spec is None:
        return NoCache()
    name, kwargs = parse_spec(spec, what="cache spec")
    if name == "none":
        if kwargs:
            raise ValueError(f"cache spec 'none' takes no kwargs, "
                             f"got {sorted(kwargs)}")
        return NoCache()
    if name == "lru":
        extra = set(kwargs) - {"capacity"}
        if extra:
            raise ValueError(f"cache spec 'lru' accepts capacity=<int>; "
                             f"unknown kwargs {sorted(extra)}")
        return LRUCache(int(kwargs.get("capacity", 64)))
    raise ValueError(f"unknown cache spec {name!r}; known: ['lru', 'none']")
