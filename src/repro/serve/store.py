"""Layout-aware chunked volume store: bricks on disk, in curve order.

The paper proves space-filling-curve layouts win *inside* one address
space; this module carries the same argument to storage.  A volume is
bricked into fixed-shape chunks, and the chunks are written to disk in
the file order a configurable curve dictates — the chunk-grid analogue
of handing ``make_layout`` a voxel grid.  The order is a **spec
string** from the one registry grammar (``"morton"``, ``"hilbert"``,
``"tiled:brick=2"``, ``"array"`` for the row-major baseline), so every
layout the project knows — including user-registered ones — is a valid
chunk placement.

On disk an unreplicated store is a flat directory::

    store/
      meta.json                 (+ .integrity.json sidecar)
      seg-00000.bin             (+ sidecar)  — `chunks_per_segment` chunks
      seg-00001.bin             ...             in curve order

With ``shards > 1`` the segments move into simulated shard
directories, and with ``replicas > 1`` every segment is written to
``replicas`` *distinct* shards::

    store/
      meta.json
      shard-00/seg-00000.bin    — replica 0 (primary)
      shard-01/seg-00000.bin    — replica 1
      ...

Placement is **keyed by curve-segment ranges**: segment ``s``'s
primary shard is ``s * shards // n_segments`` — a contiguous span of
the curve order per shard — and replica ``r`` lands ``r`` shards
further around the ring.  Spatially-close chunks therefore share not
just segments but shards, so a regional traffic spike maps to
contiguous shards (ROADMAP item 5's decomposition, served).

Chunks are grouped into fixed-size **segments** — the store's unit of
I/O, caching and now replication, the way cache lines group words.  A
query needs some set of chunks; which *segments* those chunks land in
depends entirely on the curve, and that is where the locality win
becomes bytes: spatially-close chunks share segments under
Morton/Hilbert order and scatter across them under row-major order.

Every write goes through :mod:`repro.resilience.artifacts` (atomic
replace + SHA-256 sidecar); a replica that rots on disk is quarantined
on read, served from the next replica (then **read-repaired** — the
good bytes are durably rewritten over the bad copy), and only when
every replica fails is the segment rebuilt from the ``origin`` volume.
A wrong byte is never returned.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.registry import make_layout
from ..instrument import trace as _trace
from ..resilience import artifacts as _artifacts
from ..resilience import faults as _faults

__all__ = ["ChunkStore", "chunk_placement", "STORE_SCHEMA_VERSION"]

#: bumped whenever the on-disk store format changes incompatibly
STORE_SCHEMA_VERSION = 1

#: artifact kinds for the sidecar integrity records
_META_KIND = "serve-meta"
_SEGMENT_KIND = "serve-segment"

_META_NAME = "meta.json"


def chunk_placement(order: str, grid_shape: Sequence[int]) -> np.ndarray:
    """File slot of every chunk under the ``order`` curve.

    Builds the layout named by the spec string over the *chunk grid*,
    ranks the chunks by their curve offset, and returns ``slot_of``:
    ``slot_of[chunk_id]`` is the chunk's position in file order, where
    ``chunk_id`` runs x-fastest over the chunk grid.  Ranking (rather
    than using raw curve offsets) compacts away the padding holes
    recursive layouts leave in non-power-of-two grids, so a store never
    stores a hole.
    """
    gx, gy, gz = (int(g) for g in grid_shape)
    layout = make_layout(order, (gx, gy, gz))
    ids = np.arange(gx * gy * gz, dtype=np.int64)
    ci = ids % gx
    cj = (ids // gx) % gy
    ck = ids // (gx * gy)
    offsets = layout.index_array(ci, cj, ck)
    perm = np.argsort(offsets, kind="stable")  # slot s holds chunk perm[s]
    slot_of = np.empty(ids.size, dtype=np.int64)
    slot_of[perm] = ids
    # perm maps slot -> chunk; invert to chunk -> slot
    inv = np.empty(ids.size, dtype=np.int64)
    inv[perm] = np.arange(ids.size, dtype=np.int64)
    return inv


class ChunkStore:
    """A bricked volume whose chunks sit on disk in curve order.

    Construct with :meth:`create` (pack a dense array) or :meth:`open`
    (attach to an existing store directory).  ``origin`` — the dense
    source array, or a zero-argument callable returning it — enables
    segment *repair*: a corrupt segment is quarantined by the artifact
    layer and transparently rebuilt from source.

    The reading surface is chunk-shaped on purpose: callers fetch whole
    segments (:meth:`read_segment`) and assemble subvolumes from chunk
    blocks, which is exactly the access pattern whose cost the serving
    metrics price.
    """

    def __init__(self, path: str, meta: dict,
                 origin: Union[np.ndarray, Callable[[], np.ndarray], None]
                 = None):
        self.path = os.fspath(path)
        self.meta = meta
        self.shape: Tuple[int, int, int] = tuple(meta["shape"])
        self.chunk_shape: Tuple[int, int, int] = tuple(meta["chunk_shape"])
        self.order: str = meta["order"]
        self.chunks_per_segment: int = int(meta["chunks_per_segment"])
        self.dtype = np.dtype(meta["dtype"])
        self._origin = origin
        self.grid_shape: Tuple[int, int, int] = tuple(
            -(-s // c) for s, c in zip(self.shape, self.chunk_shape))
        self.n_chunks = int(np.prod(self.grid_shape))
        self.slot_of = chunk_placement(self.order, self.grid_shape)
        # chunk_at[slot] -> chunk id (x-fastest over the chunk grid)
        self.chunk_at = np.empty(self.n_chunks, dtype=np.int64)
        self.chunk_at[self.slot_of] = np.arange(self.n_chunks, dtype=np.int64)
        self.n_segments = -(-self.n_chunks // self.chunks_per_segment)
        self.replicas = int(meta.get("replicas", 1))
        self.shards = int(meta.get("shards", 1))
        if self.replicas < 1 or self.shards < 1:
            raise ValueError(f"replicas/shards must be >= 1, got "
                             f"{self.replicas}/{self.shards}")
        if self.replicas > self.shards:
            raise ValueError(
                f"replicas ({self.replicas}) must not exceed shards "
                f"({self.shards}): copies must land on distinct shards")
        self.segments_rebuilt = 0
        self.read_repairs = 0
        self.failovers = 0
        # shards currently in simulated outage (shared with a cluster's
        # membership layer): reads routed to them raise InjectedFault
        # before any byte moves, exactly like a shard-down fault
        self.down_shards: set = set()

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, path: str, dense: np.ndarray, *,
               order: str = "morton",
               chunk: Union[int, Sequence[int]] = 16,
               chunks_per_segment: int = 4,
               replicas: int = 1,
               shards: Optional[int] = None) -> "ChunkStore":
        """Brick ``dense`` and write a store directory at ``path``.

        ``order`` is a layout spec string applied to the chunk grid;
        ``chunk`` is the brick edge (int for cubic, or a 3-tuple);
        ``chunks_per_segment`` sets the I/O granularity.  Edge chunks
        are zero-padded to the full chunk shape so every chunk has one
        byte length and segment offsets stay arithmetic.

        ``replicas`` copies of every segment are placed on distinct
        simulated ``shards`` (default: one shard per replica); with
        one replica on one shard the on-disk layout stays the flat
        legacy form, so old stores open unchanged.
        """
        dense = np.asarray(dense)
        if dense.ndim != 3:
            raise ValueError(f"expected a 3-D volume, got shape {dense.shape}")
        if isinstance(chunk, (int, np.integer)):
            chunk_shape = (int(chunk),) * 3
        else:
            chunk_shape = tuple(int(c) for c in chunk)
            if len(chunk_shape) != 3:
                raise ValueError(f"chunk must be an int or a 3-tuple, "
                                 f"got {chunk!r}")
        if any(c <= 0 for c in chunk_shape):
            raise ValueError(f"chunk extents must be positive, "
                             f"got {chunk_shape}")
        if chunks_per_segment <= 0:
            raise ValueError(f"chunks_per_segment must be positive, "
                             f"got {chunks_per_segment}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if shards is None:
            shards = replicas
        # validate the order spec (and fail fast) before touching disk
        grid_shape = tuple(-(-s // c)
                           for s, c in zip(dense.shape, chunk_shape))
        chunk_placement(order, grid_shape)
        meta = {
            "schema_version": STORE_SCHEMA_VERSION,
            "shape": list(dense.shape),
            "chunk_shape": list(chunk_shape),
            "order": order,
            "chunks_per_segment": int(chunks_per_segment),
            "dtype": np.dtype(dense.dtype).newbyteorder("<").str,
            "replicas": int(replicas),
            "shards": int(shards),
        }
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        store = cls(path, meta, origin=dense)
        for seg in range(store.n_segments):
            payload = store._segment_payload(dense, seg)
            for r in range(store.replicas):
                replica_path = store._replica_path(seg, r)
                os.makedirs(os.path.dirname(replica_path), exist_ok=True)
                _artifacts.write_artifact(
                    replica_path, payload,
                    kind=_SEGMENT_KIND, schema_version=STORE_SCHEMA_VERSION)
        _artifacts.write_text_artifact(
            os.path.join(path, _META_NAME),
            json.dumps(meta, sort_keys=True) + "\n",
            kind=_META_KIND, schema_version=STORE_SCHEMA_VERSION)
        return store

    @classmethod
    def open(cls, path: str,
             origin: Union[np.ndarray, Callable[[], np.ndarray], None]
             = None) -> "ChunkStore":
        """Attach to an existing store directory (meta is verified)."""
        path = os.fspath(path)
        data = _artifacts.read_artifact(os.path.join(path, _META_NAME))
        meta = json.loads(data.decode("utf-8"))
        if meta.get("schema_version") != STORE_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported store schema "
                f"{meta.get('schema_version')!r}")
        return cls(path, meta, origin=origin)

    # -- geometry -------------------------------------------------------------

    @property
    def chunk_elems(self) -> int:
        """Elements per (padded) chunk."""
        cx, cy, cz = self.chunk_shape
        return cx * cy * cz

    @property
    def chunk_bytes(self) -> int:
        """Bytes per (padded) chunk."""
        return self.chunk_elems * self.dtype.itemsize

    @property
    def segment_bytes(self) -> int:
        """Bytes per full segment (the tail segment may be shorter)."""
        return self.chunk_bytes * self.chunks_per_segment

    def chunk_coords(self, chunk_ids: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Chunk-grid coordinates of x-fastest ``chunk_ids``."""
        gx, gy, _ = self.grid_shape
        ids = np.asarray(chunk_ids, dtype=np.int64)
        return ids % gx, (ids // gx) % gy, ids // (gx * gy)

    def chunk_ids(self, ci, cj, ck) -> np.ndarray:
        """X-fastest linear chunk ids of chunk-grid coordinates."""
        gx, gy, _ = self.grid_shape
        ci = np.asarray(ci, dtype=np.int64)
        cj = np.asarray(cj, dtype=np.int64)
        ck = np.asarray(ck, dtype=np.int64)
        return ci + gx * (cj + gy * ck)

    def segment_of_slot(self, slots) -> np.ndarray:
        """Segment index holding each file slot."""
        return np.asarray(slots, dtype=np.int64) // self.chunks_per_segment

    def segment_chunk_count(self, seg: int) -> int:
        """Number of chunks stored in segment ``seg``."""
        start = seg * self.chunks_per_segment
        if not 0 <= start < self.n_chunks:
            raise IndexError(f"segment {seg} out of range "
                             f"0..{self.n_segments - 1}")
        return min(self.chunks_per_segment, self.n_chunks - start)

    def chunks_for_bbox(self, lo: Sequence[int],
                        hi: Sequence[int]) -> np.ndarray:
        """Chunk ids intersecting the half-open voxel box ``[lo, hi)``.

        Placement-independent: the same box needs the same chunks under
        every order spec — only *where* those chunks live changes.
        """
        lo = tuple(int(v) for v in lo)
        hi = tuple(int(v) for v in hi)
        if any(a >= b for a, b in zip(lo, hi)):
            raise ValueError(f"empty bbox lo={lo} hi={hi}")
        if any(a < 0 or b > s for a, b, s in zip(lo, hi, self.shape)):
            raise ValueError(f"bbox lo={lo} hi={hi} outside volume "
                             f"{self.shape}")
        c0 = [a // c for a, c in zip(lo, self.chunk_shape)]
        c1 = [-(-b // c) for b, c in zip(hi, self.chunk_shape)]
        ck, cj, ci = np.meshgrid(np.arange(c0[2], c1[2]),
                                 np.arange(c0[1], c1[1]),
                                 np.arange(c0[0], c1[0]), indexing="ij")
        return self.chunk_ids(ci.ravel(), cj.ravel(), ck.ravel())

    # -- segment I/O ----------------------------------------------------------

    def shard_of_segment(self, seg: int, replica: int = 0) -> int:
        """Simulated shard holding replica ``replica`` of segment ``seg``.

        Primaries partition the curve order into contiguous
        curve-segment ranges (shard ``s * shards // n_segments``);
        replica ``r`` sits ``r`` shards further around the ring, so
        with ``replicas <= shards`` every copy lands on a distinct
        shard and one dead shard never takes out a whole segment.
        """
        primary = seg * self.shards // max(1, self.n_segments)
        return (primary + replica) % self.shards

    def path_on_shard(self, seg: int, shard: int) -> str:
        """Where a copy of segment ``seg`` lives on shard ``shard``.

        The copy need not exist: a cluster's rebalancer uses this to
        place new copies as the shard map moves.  Unsharded stores keep
        the flat legacy path.
        """
        name = f"seg-{seg:05d}.bin"
        if self.shards == 1:
            return os.path.join(self.path, name)
        return os.path.join(self.path, f"shard-{shard:02d}", name)

    def _replica_path(self, seg: int, replica: int) -> str:
        """On-disk path of one replica (flat layout when unsharded)."""
        return self.path_on_shard(seg, self.shard_of_segment(seg, replica))

    def _segment_path(self, seg: int) -> str:
        """The primary replica's path (the whole segment, pre-replication)."""
        return self._replica_path(seg, 0)

    def _segment_payload(self, dense: np.ndarray, seg: int) -> bytes:
        """Segment ``seg``'s bytes, packed from the dense source."""
        cx, cy, cz = self.chunk_shape
        dt = np.dtype(self.meta["dtype"])
        parts: List[bytes] = []
        start = seg * self.chunks_per_segment
        for slot in range(start, start + self.segment_chunk_count(seg)):
            cid = int(self.chunk_at[slot])
            ci, cj, ck = (int(v) for v in self.chunk_coords(cid))
            block = np.zeros((cx, cy, cz), dtype=dt)
            a = (ci * cx, cj * cy, ck * cz)
            b = tuple(min(av + c, s)
                      for av, c, s in zip(a, (cx, cy, cz), self.shape))
            block[: b[0] - a[0], : b[1] - a[1], : b[2] - a[2]] = \
                dense[a[0]:b[0], a[1]:b[1], a[2]:b[2]]
            parts.append(block.tobytes())
        return b"".join(parts)

    def _origin_dense(self) -> np.ndarray:
        origin = self._origin() if callable(self._origin) else self._origin
        dense = np.asarray(origin)
        if dense.shape != self.shape:
            raise ValueError(
                f"origin shape {dense.shape} != store shape {self.shape}")
        return dense

    def rebuild_segment(self, seg: int,
                        quarantined: Optional[str] = None,
                        shards: Optional[Sequence[int]] = None) -> None:
        """Re-pack segment ``seg`` from the origin and rewrite *every*
        replica durably.

        ``quarantined`` — where the artifact layer moved the corrupt
        evidence, recorded on the trace span so a post-mortem can go
        from "segment N was rebuilt" straight to the rotted bytes.
        ``shards`` — rebuild onto these shards instead of the static
        replica placement (a cluster's versioned map).
        """
        if self._origin is None:
            raise RuntimeError(
                f"segment {seg} of {self.path} needs rebuilding but the "
                f"store was opened without an origin")
        with _trace.span("serve.rebuild_segment", segment=seg,
                         quarantined=quarantined or ""):
            payload = self._segment_payload(self._origin_dense(), seg)
            if shards is not None:
                paths = [self.path_on_shard(seg, s) for s in shards]
            else:
                paths = [self._replica_path(seg, r)
                         for r in range(self.replicas)]
            for replica_path in paths:
                os.makedirs(os.path.dirname(replica_path), exist_ok=True)
                _artifacts.write_artifact(
                    replica_path, payload,
                    kind=_SEGMENT_KIND, schema_version=STORE_SCHEMA_VERSION)
                _trace.add("resilience.artifacts_rebuilt", 1)
            self.segments_rebuilt += 1
            _trace.add("serve.segments_rebuilt", 1)

    def _write_segment_copy(self, path: str, payload: bytes) -> None:
        """One durable segment write (atomic replace + sidecar)."""
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _artifacts.write_artifact(
            path, payload,
            kind=_SEGMENT_KIND, schema_version=STORE_SCHEMA_VERSION)

    def write_replica_on(self, seg: int, shard: int, payload: bytes) -> None:
        """Durably place a copy of segment ``seg`` on shard ``shard``.

        The rebalancer's move primitive: the payload must already be
        verified (it came off :meth:`read_replica_bytes`), and the
        write carries a fresh sidecar so the new copy verifies too.
        """
        self._write_segment_copy(self.path_on_shard(seg, shard), payload)

    def _repair_copy(self, path: str, payload: bytes) -> None:
        """Read-repair one corrupt copy in place from known-good bytes."""
        self._write_segment_copy(path, payload)
        self.read_repairs += 1
        _trace.add("serve.reliability_read_repairs", 1)

    def repair_replica(self, seg: int, replica: int, payload: bytes) -> None:
        """Read-repair: durably rewrite a failed replica from known-good
        bytes another replica just served (sidecar included)."""
        self._repair_copy(self._replica_path(seg, replica), payload)

    def read_replica_bytes(self, seg: int,
                           shards: Sequence[int]) -> bytes:
        """First verified copy of segment ``seg`` among ``shards``.

        The rebalancer's and scrubber's source read: tries each shard
        in order, skipping outages and quarantining corruption exactly
        like the query path, but performs no repair itself — the caller
        decides where the bytes go.  Raises the last failure when no
        shard can serve the segment.
        """
        expected = self.segment_chunk_count(seg) * self.chunk_bytes
        last: Optional[Exception] = None
        for shard in shards:
            try:
                return self._read_replica(self.path_on_shard(seg, shard),
                                          shard, expected)
            except (_artifacts.ArtifactIntegrityError,
                    _faults.InjectedFault, OSError) as exc:
                last = exc
        raise last if last is not None else _faults.InjectedFault(
            f"segment {seg}: no source shards given")

    def _read_replica(self, path: str, shard: int, expected: int) -> bytes:
        """One verified replica read, with the serve fault hooks applied.

        ``shard-down`` faults fire before any byte moves (and consume
        no read index); ``segread-*`` faults key on the process-local
        read index, exactly like disk faults key on the write index.
        Raises :class:`~repro.resilience.artifacts.ArtifactIntegrityError`
        on corruption (after quarantining) and
        :class:`~repro.resilience.faults.InjectedFault` on a dead shard.
        """
        if shard in self.down_shards:
            raise _faults.InjectedFault(
                f"shard {shard} is down (cluster outage)")
        plan = _faults.active_plan()
        if plan:
            down = plan.for_shard(shard)
            if down is not None:
                raise _faults.InjectedFault(
                    f"shard {shard} is down ({down.to_spec()})")
            spec = plan.for_segment_read(_faults.next_read_index())
            if spec is not None:
                if spec.mode == "segread-slow":
                    time.sleep(spec.seconds)
                elif spec.mode == "segread-corrupt":
                    _artifacts.corrupt_at_rest(path, spec)
        data = _artifacts.read_artifact(path)
        if len(data) != expected:
            # size drift the sidecar did not catch (legacy sidecar-less
            # file): treat as corruption — quarantine and fail over
            problem = f"size {len(data)} B != expected {expected} B"
            quarantined = _artifacts.quarantine_artifact(path, problem)
            raise _artifacts.ArtifactIntegrityError(path, problem, quarantined)
        return data

    def read_segment(self, seg: int, policy=None,
                     locations: Optional[Sequence[int]] = None) -> np.ndarray:
        """Segment ``seg`` as a ``(n_chunks_in_segment, cx, cy, cz)`` array.

        Bytes are verified against the sidecar on every attempt; the
        read fails over replica by replica (corrupt copies are
        quarantined by the artifact layer, dead shards are skipped by
        the breaker), a success after failures read-repairs the bad
        replicas, and only when every replica fails is the segment
        rebuilt from the origin.  A wrong byte is never returned.

        ``policy`` — an optional :class:`~repro.serve.reliability.
        ReadPolicy` supplying deadline checks, breaker routing and
        hedged replica ordering; without one, every replica is tried
        in placement order.

        ``locations`` — an explicit shard list to read from (a
        cluster's versioned shard map), overriding the static replica
        placement.  Corrupt copies among them are read-repaired in
        place, and a total failure rebuilds onto exactly the reachable
        subset of those shards.
        """
        n = self.segment_chunk_count(seg)
        expected = n * self.chunk_bytes
        if policy is not None:
            policy.check_deadline()
        if locations is not None:
            shards = list(locations)
            if policy is not None:
                shards = policy.order_shards(shards)
            attempts = [(s, self.path_on_shard(seg, s)) for s in shards]
        else:
            order = policy.replica_order(self, seg) if policy is not None \
                else range(self.replicas)
            attempts = [(self.shard_of_segment(seg, r),
                         self._replica_path(seg, r)) for r in order]
        data: Optional[bytes] = None
        corrupt_paths: List[str] = []
        quarantined: Optional[str] = None
        failed = 0
        for shard, path in attempts:
            if policy is not None and not policy.allow_shard(shard):
                _trace.add("serve.reliability_breaker_denied", 1)
                continue
            started = time.perf_counter()
            try:
                data = self._read_replica(path, shard, expected)
            except _artifacts.ArtifactIntegrityError as exc:
                corrupt_paths.append(path)
                quarantined = exc.quarantined_to or quarantined
            except _faults.InjectedFault:
                pass  # shard outage: the replica's bytes are fine
            else:
                if policy is not None:
                    policy.on_success(shard, time.perf_counter() - started)
                break
            failed += 1
            if policy is not None:
                policy.on_failure(shard)
            _trace.add("serve.reliability_failovers", 1)
            self.failovers += 1
        if data is None:
            # every replica failed or was denied: origin is the truth
            if locations is not None:
                reachable = [s for s, _ in attempts
                             if s not in self.down_shards]
                targets = reachable or [s for s, _ in attempts]
                self.rebuild_segment(seg, quarantined=quarantined,
                                     shards=targets)
                data = _artifacts.read_artifact(
                    self.path_on_shard(seg, targets[0]))
            else:
                self.rebuild_segment(seg, quarantined=quarantined)
                data = _artifacts.read_artifact(self._segment_path(seg))
        elif failed or corrupt_paths:
            for path in corrupt_paths:
                self._repair_copy(path, data)
        dt = np.dtype(self.meta["dtype"])
        arr = np.frombuffer(data, dtype=dt).reshape((n,) + self.chunk_shape)
        return arr.astype(self.dtype) if dt != self.dtype else arr

    # -- assembly -------------------------------------------------------------

    def read_bbox(self, lo: Sequence[int], hi: Sequence[int],
                  fetch: Optional[Callable[[int], np.ndarray]] = None
                  ) -> np.ndarray:
        """Assemble the dense subvolume ``[lo, hi)`` from chunk blocks.

        ``fetch(segment_index) -> segment array`` injects the caller's
        read path (the server passes its cache); default is a direct
        :meth:`read_segment`.  Chunks are visited in **file-slot
        order**, so the access stream a cache sees is the stream the
        placement produces.
        """
        fetch = fetch if fetch is not None else self.read_segment
        lo = tuple(int(v) for v in lo)
        hi = tuple(int(v) for v in hi)
        cx, cy, cz = self.chunk_shape
        out = np.empty(tuple(b - a for a, b in zip(lo, hi)),
                       dtype=self.dtype)
        ids = self.chunks_for_bbox(lo, hi)
        slots = self.slot_of[ids]
        for slot in np.sort(slots):
            cid = int(self.chunk_at[slot])
            ci, cj, ck = (int(v) for v in self.chunk_coords(cid))
            seg = int(slot) // self.chunks_per_segment
            block = fetch(seg)[int(slot) % self.chunks_per_segment]
            a = (max(lo[0], ci * cx), max(lo[1], cj * cy), max(lo[2], ck * cz))
            b = (min(hi[0], ci * cx + cx), min(hi[1], cj * cy + cy),
                 min(hi[2], ck * cz + cz))
            out[a[0] - lo[0]:b[0] - lo[0],
                a[1] - lo[1]:b[1] - lo[1],
                a[2] - lo[2]:b[2] - lo[2]] = \
                block[a[0] - ci * cx:b[0] - ci * cx,
                      a[1] - cj * cy:b[1] - cj * cy,
                      a[2] - ck * cz:b[2] - ck * cz]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChunkStore(shape={self.shape}, chunk={self.chunk_shape}, "
                f"order={self.order!r}, segments={self.n_segments})")
