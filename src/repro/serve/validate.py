"""Cross-check the server's cache counters against memsim — bit-for-bit.

The serving layer's headline numbers (hit rate, bytes touched) come
from its own LRU's counters.  Those counters are only as trustworthy
as the cache implementation, so this module replays the *exact*
segment-access stream the cache logged through two independent
implementations of the same policy:

1. the **Mattson stack-distance histogram**
   (:func:`repro.memsim.stackdist.stack_distance_histogram`) — the
   single-pass analytic backend, pricing the FA-LRU at the cache's
   capacity;
2. the **hierarchy simulator**
   (:class:`repro.memsim.hierarchy.Machine` over
   :func:`~repro.memsim.stackdist.fully_associative_spec`) — the
   event-driven model, counting ``L1_TCA`` / ``L1_TCM``.

All three (server, histogram, machine) must agree **exactly** — not
within tolerance.  A one-access discrepancy means one of the three has
a policy bug, and the mismatch report says which pair disagrees where.

The exactness survives the reliability layer: when a segment load
fails mid-access (fault, deadline, dead shard) the server calls
:meth:`~repro.serve.cache.LRUCache.forget_failed_access` to roll the
provisional log entry and counters back, so retries re-account the
access once and the replayed stream stays the stream that actually
filled the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..memsim.hierarchy import Machine
from ..memsim.stackdist import fully_associative_spec, stack_distance_histogram

__all__ = ["CacheCrossCheck", "cache_crosscheck", "assert_cache_consistent"]


@dataclass(frozen=True)
class CacheCrossCheck:
    """All three views of one access stream, plus the verdict."""
    accesses: int
    capacity: int
    server_hits: int
    server_misses: int
    stackdist_hits: int
    stackdist_misses: int
    machine_hits: int
    machine_misses: int

    @property
    def consistent(self) -> bool:
        return (self.server_hits == self.stackdist_hits == self.machine_hits
                and self.server_misses == self.stackdist_misses
                == self.machine_misses)

    def mismatches(self) -> List[str]:
        """Human-readable list of disagreeing pairs (empty when clean)."""
        out = []
        if self.server_hits != self.stackdist_hits:
            out.append(f"server hits {self.server_hits} != stack-distance "
                       f"hits {self.stackdist_hits}")
        if self.server_misses != self.stackdist_misses:
            out.append(f"server misses {self.server_misses} != "
                       f"stack-distance misses {self.stackdist_misses}")
        if self.server_hits != self.machine_hits:
            out.append(f"server hits {self.server_hits} != machine hits "
                       f"{self.machine_hits}")
        if self.server_misses != self.machine_misses:
            out.append(f"server misses {self.server_misses} != machine "
                       f"misses {self.machine_misses}")
        return out


def cache_crosscheck(cache) -> CacheCrossCheck:
    """Price ``cache.access_log`` through memsim and compare counters.

    ``cache`` is any object with ``access_log``, ``capacity``,
    ``hits``, ``misses`` (the serve caches).  An uncached server
    (capacity 0) is priced at capacity 1 minus its would-be hits —
    i.e. it is exempt from the histogram comparison and checked only
    for hits == 0.
    """
    log = np.asarray(cache.access_log, dtype=np.int64)
    n = int(log.size)
    capacity = int(cache.capacity)
    if capacity <= 0:
        # no cache: every access must have missed
        return CacheCrossCheck(
            accesses=n, capacity=0,
            server_hits=cache.hits, server_misses=cache.misses,
            stackdist_hits=0, stackdist_misses=n,
            machine_hits=0, machine_misses=n)
    hist = stack_distance_histogram(log)
    machine = Machine(fully_associative_spec(capacity))
    machine.access(0, log)
    return CacheCrossCheck(
        accesses=n, capacity=capacity,
        server_hits=cache.hits, server_misses=cache.misses,
        stackdist_hits=int(hist.hits(capacity)),
        stackdist_misses=int(hist.misses(capacity)),
        machine_hits=int(machine.counter("L1_TCA")
                         - machine.counter("L1_TCM")),
        machine_misses=int(machine.counter("L1_TCM")))


def assert_cache_consistent(cache) -> CacheCrossCheck:
    """:func:`cache_crosscheck`, raising on any disagreement."""
    check = cache_crosscheck(cache)
    if not check.consistent:
        raise AssertionError(
            "server cache counters disagree with memsim over "
            f"{check.accesses} accesses at capacity {check.capacity}: "
            + "; ".join(check.mismatches()))
    return check
