"""Layout-aware chunked volume serving.

The paper's space-filling-curve argument, carried from one address
space to a storage-and-query service:

* :class:`~repro.serve.store.ChunkStore` — a volume bricked into
  chunks placed on disk in the file order of any registered layout
  (order is a spec string: ``"morton"``, ``"hilbert"``,
  ``"tiled:brick=2"``, ``"array"`` for row-major), written durably
  through :mod:`repro.resilience.artifacts`;
* :class:`~repro.serve.server.VolumeServer` — an asyncio service
  answering bbox / slab / viewport / ray queries behind a hot-segment
  LRU whose counters are cross-checked **bit-for-bit** against the
  memsim stack-distance model (:mod:`repro.serve.validate`);
* :mod:`~repro.serve.reliability` — the fault-tolerance layer:
  N-way segment replication across simulated shards (placement keyed
  by curve-segment ranges), read-path failover with read-repair,
  per-query deadlines, retries, hedged reads, per-shard circuit
  breakers and bounded admission with typed load-shedding
  (``docs/SERVING.md`` § Serving reliability);
* :mod:`~repro.serve.cluster` — the elastic tier on top: versioned
  curve-range shard maps (:class:`~repro.serve.cluster.ShardMap`),
  deterministic event-count failure detection, budgeted rebalancing
  that re-replicates through the read-repair path while the old map
  keeps serving, and an anti-entropy scrubber
  (``docs/SERVING.md`` § Elastic sharding);
* :mod:`~repro.serve.traffic` — seeded synthetic sessions (Zipf
  viewpoints, orbit sweeps, burst arrivals);
* :mod:`~repro.serve.fuzz` — seeded scheduling perturbation
  (:class:`~repro.serve.fuzz.ScheduleFuzzer`): the runtime twin of the
  RPC5xx static rules, driven by ``scripts/fuzz_interleavings.py`` to
  prove served bytes are interleaving-independent;
* :mod:`~repro.serve.bench` — the cross-layout comparison
  (``repro serve-bench`` / ``scripts/bench_serve.py``) with its gate:
  curve orders must touch no more segments per query than row-major.

See ``docs/SERVING.md`` for the tour.
"""

from .bench import OrderResult, ServeBenchResult, render, run_serve_bench
from .cache import LRUCache, NoCache, make_cache
from .cluster import (
    FailureDetector,
    RebalanceComparison,
    Scrubber,
    ShardCluster,
    ShardMap,
    compare_rebalance,
)
from .fuzz import ScheduleFuzzer
from .reliability import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    QueryRejected,
    ReadPolicy,
    ReliabilityConfig,
)
from .server import (
    BBoxQuery,
    QueryResult,
    RayQuery,
    SlabQuery,
    ViewportQuery,
    VolumeServer,
)
from .store import ChunkStore, chunk_placement
from .traffic import DEFAULT_MIX, arrival_times, generate_queries
from .validate import CacheCrossCheck, assert_cache_consistent, cache_crosscheck

__all__ = [
    "BBoxQuery",
    "CacheCrossCheck",
    "ChunkStore",
    "CircuitBreaker",
    "DEFAULT_MIX",
    "Deadline",
    "DeadlineExceeded",
    "FailureDetector",
    "LRUCache",
    "NoCache",
    "OrderResult",
    "QueryRejected",
    "QueryResult",
    "RayQuery",
    "ReadPolicy",
    "RebalanceComparison",
    "ReliabilityConfig",
    "ScheduleFuzzer",
    "Scrubber",
    "ServeBenchResult",
    "ShardCluster",
    "ShardMap",
    "SlabQuery",
    "ViewportQuery",
    "VolumeServer",
    "arrival_times",
    "assert_cache_consistent",
    "cache_crosscheck",
    "chunk_placement",
    "compare_rebalance",
    "generate_queries",
    "make_cache",
    "render",
    "run_serve_bench",
]
