"""Simulator-backed auto-tuning of blocking and tiling parameters.

Ties the generic searcher to the experiment harness: the objective is
the simulated runtime of a real cell, so tuning probes the machine model
exactly the way empirical auto-tuners probe hardware.  Two tuners cover
the paper's two tunable baselines:

* :func:`tune_brick` — the cache-blocking factor of
  :class:`~repro.core.tiled.TiledLayout` (the Lam/Datta problem the
  paper's Section II recounts);
* :func:`tune_tile_size` — the renderer's image-tile edge (Bethel &
  Howison 2012 found 32² "consistently good"; the tuner lets you check
  that on any modelled platform).

Both return the full :class:`~repro.tuning.search.TuningResult`, so the
cost landscape itself is inspectable — the point of ablation A2 is that
this landscape is what Z-order lets you skip.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..core.registry import LAYOUTS, register_layout
from ..core.tiled import TiledLayout
from ..experiments.config import BilateralCell, VolrendCell
from ..experiments.harness import run_bilateral_cell, run_volrend_cell
from .search import ParameterSpace, TuningResult, exhaustive_search, hill_climb

__all__ = ["tune_brick", "tune_tile_size", "tiled_layout_name"]


def tiled_layout_name(brick: int) -> str:
    """Register (once) and return the layout name for a brick size."""
    name = f"tiled-b{brick}"
    if name not in LAYOUTS:
        register_layout(
            name, lambda shape, _b=brick: TiledLayout(shape, brick=_b))
    return name


def tune_brick(cell: BilateralCell,
               bricks: Sequence[int] = (2, 4, 8, 16, 32),
               method: str = "exhaustive") -> TuningResult:
    """Find the brick edge minimizing the cell's simulated runtime.

    ``cell.layout`` is ignored; each evaluation swaps in a
    ``TiledLayout`` with the candidate brick.
    """
    space = ParameterSpace.from_dict({"brick": list(bricks)})

    def objective(params) -> float:
        layout = tiled_layout_name(int(params["brick"]))
        return run_bilateral_cell(cell.with_layout(layout)).runtime_seconds

    if method == "exhaustive":
        return exhaustive_search(space, objective)
    if method == "hill":
        return hill_climb(space, objective)
    raise ValueError(f"unknown method {method!r}")


def tune_tile_size(cell: VolrendCell,
                   tiles: Sequence[int] = (8, 16, 32, 64),
                   method: str = "exhaustive") -> TuningResult:
    """Find the image-tile edge minimizing the cell's simulated runtime.

    Candidate tiles that leave fewer tiles than threads are skipped by
    charging them an infinite cost (a worker pool cannot feed its
    threads), matching how a real tuner would reject them.
    """
    space = ParameterSpace.from_dict({"tile": list(tiles)})

    def objective(params) -> float:
        tile = int(params["tile"])
        n_tiles = (-(-cell.image_size // tile)) ** 2
        if n_tiles < cell.n_threads:
            return float("inf")
        candidate = replace(cell, tile_size=tile)
        return run_volrend_cell(candidate).runtime_seconds

    if method == "exhaustive":
        return exhaustive_search(space, objective)
    if method == "hill":
        return hill_climb(space, objective)
    raise ValueError(f"unknown method {method!r}")
