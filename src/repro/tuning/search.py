"""Generic parameter search: exhaustive sweep and coordinate hill-climb.

The paper's Section II frames auto-tuning as the practical answer to
un-modelable cache hierarchies ("the idea of auto-tuning has emerged as
a methodology for empirically determining the optimal blocking factor").
This module provides the searcher; :mod:`repro.tuning.autotune` wires it
to the simulator so blocking factors and tile sizes can be tuned against
a machine model the same way ATLAS-style tuners probe real machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ParameterSpace", "TuningResult", "exhaustive_search", "hill_climb"]

Params = Dict[str, object]


@dataclass(frozen=True)
class ParameterSpace:
    """Cartesian grid of named, ordered parameter values.

    Values per axis must be ordered (hill-climbing moves to index
    neighbours, which is only meaningful on an ordered axis).
    """

    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]

    @classmethod
    def from_dict(cls, axes: Dict[str, Sequence[object]]) -> "ParameterSpace":
        """Build from ``{name: [values...]}`` (insertion order kept)."""
        if not axes:
            raise ValueError("parameter space needs at least one axis")
        norm = []
        for name, values in axes.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            norm.append((name, values))
        return cls(axes=tuple(norm))

    @property
    def n_points(self) -> int:
        """Total grid points."""
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def point(self, indices: Sequence[int]) -> Params:
        """Parameter dict at grid ``indices``."""
        return {name: values[i]
                for (name, values), i in zip(self.axes, indices)}

    def all_indices(self):
        """Iterate every grid index tuple, first axis fastest."""
        shape = [len(values) for _, values in self.axes]
        idx = [0] * len(shape)
        while True:
            yield tuple(idx)
            for d in range(len(shape)):
                idx[d] += 1
                if idx[d] < shape[d]:
                    break
                idx[d] = 0
            else:
                return

    def neighbors(self, indices: Sequence[int]):
        """Index tuples differing by ±1 in exactly one axis."""
        for d, (_, values) in enumerate(self.axes):
            for delta in (-1, 1):
                cand = list(indices)
                cand[d] += delta
                if 0 <= cand[d] < len(values):
                    yield tuple(cand)


@dataclass
class TuningResult:
    """Outcome of a search.

    Attributes
    ----------
    best_params, best_cost : the winner.
    evaluations : int
        Objective calls actually made (cache hits excluded).
    history : list of (params, cost)
        Every distinct point evaluated, in evaluation order.
    """

    best_params: Params
    best_cost: float
    evaluations: int
    history: List[Tuple[Params, float]] = field(default_factory=list)


def _evaluated(objective, space, cache):
    def run(indices) -> float:
        if indices not in cache:
            cache[indices] = float(objective(space.point(indices)))
        return cache[indices]
    return run


def exhaustive_search(space: ParameterSpace,
                      objective: Callable[[Params], float]) -> TuningResult:
    """Evaluate every grid point; return the global minimum."""
    cache: dict = {}
    run = _evaluated(objective, space, cache)
    best_idx, best_cost = None, np.inf
    history = []
    for indices in space.all_indices():
        cost = run(indices)
        history.append((space.point(indices), cost))
        if cost < best_cost:
            best_idx, best_cost = indices, cost
    return TuningResult(
        best_params=space.point(best_idx),
        best_cost=best_cost,
        evaluations=len(cache),
        history=history,
    )


def hill_climb(space: ParameterSpace,
               objective: Callable[[Params], float],
               start: Optional[Sequence[int]] = None,
               restarts: int = 2,
               seed: int = 0) -> TuningResult:
    """Greedy coordinate descent with random restarts.

    From each start, repeatedly move to the best strictly-improving
    index neighbour until none exists.  Evaluations are memoized across
    restarts, so the total objective calls stay well under exhaustive
    for smooth landscapes.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    rng = np.random.default_rng(seed)
    shape = [len(values) for _, values in space.axes]
    starts: List[Tuple[int, ...]] = []
    if start is not None:
        starts.append(tuple(start))
    while len(starts) < restarts:
        starts.append(tuple(int(rng.integers(0, n)) for n in shape))

    cache: dict = {}
    run = _evaluated(objective, space, cache)
    history: List[Tuple[Params, float]] = []
    best_idx, best_cost = None, np.inf
    for s in starts:
        current = s
        current_cost = run(current)
        history.append((space.point(current), current_cost))
        improved = True
        while improved:
            improved = False
            for cand in space.neighbors(current):
                cost = run(cand)
                history.append((space.point(cand), cost))
                if cost < current_cost:
                    current, current_cost = cand, cost
                    improved = True
        if current_cost < best_cost:
            best_idx, best_cost = current, current_cost
    return TuningResult(
        best_params=space.point(best_idx),
        best_cost=best_cost,
        evaluations=len(cache),
        history=history,
    )
