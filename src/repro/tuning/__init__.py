"""Auto-tuning extension: empirical parameter search against the simulator.

The paper's Section II positions SFC layouts against tuned blocking;
this package supplies the tuner (exhaustive / hill-climb searchers, plus
brick- and tile-size tuners wired to the experiment harness) so that the
"tuned blocking vs parameter-free Z-order" comparison in ablation A2 is
fully reproducible.
"""

from .autotune import tiled_layout_name, tune_brick, tune_tile_size
from .search import ParameterSpace, TuningResult, exhaustive_search, hill_climb

__all__ = [
    "ParameterSpace",
    "TuningResult",
    "exhaustive_search",
    "hill_climb",
    "tiled_layout_name",
    "tune_brick",
    "tune_tile_size",
]
