"""Runtime access sanitizer: validate every replayed access vs the layout.

The static checker (``repro check``, RPC1xx) proves kernels *call* the
layout interface; this module proves the interface *delivers* — that
every offset a :class:`~repro.core.grid.Grid` touches at run time lands
inside the allocation and on an address the declared layout actually
maps.  It is the dynamic half of the layout contract:

* **structural check** (once per layout): the full coordinate → offset
  table must stay inside ``buffer_size`` and be alias-free (bijective
  onto its image);
* **access check** (per batch): replayed offsets must be in-allocation
  and land on mapped addresses — a hit on padding or on an address the
  layout never produces means some code path bypassed the layout
  (exactly the raw-arithmetic bug class RPC101 exists to prevent).

Opt-in and off by default: enable with ``REPRO_SANITIZE=1`` in the
environment (``REPRO_SANITIZE=report`` to count violations instead of
raising) or the CLI's ``--sanitize`` flag, or programmatically via
:func:`enable`.  When disabled the only cost in the hot path is one
module-global load and an ``is not None`` test per batched access
(guarded in ``Grid.gather``/``scatter``/``offsets``; see
``scripts/bench_sanitize.py`` for the enforced overhead budget).

Violations surface through the existing trace/manifest machinery as
top-level ``sanitize.*`` counters (see ``repro.instrument.manifest``),
and in strict mode as a :class:`SanitizeViolation` carrying the layout
name, the violation kind and example offsets.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import grid as _grid
from ..instrument import trace

__all__ = [
    "SanitizeViolation",
    "AccessSanitizer",
    "enable",
    "disable",
    "is_enabled",
    "current",
    "enable_from_env",
]

#: environment switch; "0"/"" off, "report" counts, anything else strict
ENV_VAR = "REPRO_SANITIZE"


class SanitizeViolation(RuntimeError):
    """A replayed access (or a layout's own table) broke the contract.

    Attributes mirror the violation record: ``layout`` (name), ``kind``
    (``out-of-allocation`` / ``unmapped-address`` / ``aliased-layout``),
    ``count`` and ``examples`` (first few offending offsets).
    """

    def __init__(self, layout: str, kind: str, count: int,
                 examples: List[int]):
        self.layout = layout
        self.kind = kind
        self.count = count
        self.examples = examples
        super().__init__(
            f"{kind}: {count} offending access(es) under layout "
            f"{layout!r}, e.g. offsets {examples}")


class _LayoutTable:
    """Cached structural verdict + valid-address mask for one layout."""

    __slots__ = ("name", "buffer_size", "valid", "structural")

    def __init__(self, layout) -> None:
        self.name = getattr(layout, "name", type(layout).__name__)
        self.buffer_size = int(layout.buffer_size)
        offs = np.asarray(layout.offsets_for_all()).ravel()
        self.structural: Optional[Tuple[str, int, List[int]]] = None
        oob = offs[(offs < 0) | (offs >= self.buffer_size)]
        if oob.size:
            self.structural = ("out-of-allocation", int(oob.size),
                               [int(v) for v in oob[:4]])
            offs = offs[(offs >= 0) & (offs < self.buffer_size)]
        else:
            uniq, counts = np.unique(offs, return_counts=True)
            shared = uniq[counts > 1]
            if shared.size:
                self.structural = ("aliased-layout", int(shared.size),
                                   [int(v) for v in shared[:4]])
        self.valid = np.zeros(self.buffer_size, dtype=bool)
        self.valid[offs] = True


class AccessSanitizer:
    """The checker installed into ``repro.core.grid`` while enabled.

    Parameters
    ----------
    mode : ``"strict"`` or ``"report"``
        strict raises :class:`SanitizeViolation` on the first offending
        batch; report keeps running and tallies (for sweeps where one
        bad layout should not abort the whole batch).
    max_records : int
        Bound on the retained violation detail records in report mode.
    """

    def __init__(self, mode: str = "strict", max_records: int = 64):
        if mode not in ("strict", "report"):
            raise ValueError(f"mode must be 'strict' or 'report', got {mode!r}")
        self.mode = mode
        self.max_records = max_records
        self.counters: Dict[str, int] = {
            "batches": 0, "accesses": 0, "layouts": 0, "violations": 0,
        }
        self.records: List[Dict] = []
        # keyed by id(layout); the table list keeps the layouts alive so
        # a recycled id can never pick up a stale verdict
        self._tables: Dict[int, _LayoutTable] = {}
        self._keepalive: List = []

    # -- bookkeeping ---------------------------------------------------------

    def _violate(self, table: _LayoutTable, kind: str, count: int,
                 examples: List[int]) -> None:
        self.counters["violations"] += count
        self.counters[kind] = self.counters.get(kind, 0) + count
        trace.add("sanitize.violations", count)
        trace.add(f"sanitize.{kind}", count)
        if self.mode == "strict":
            raise SanitizeViolation(table.name, kind, count, examples)
        if len(self.records) < self.max_records:
            self.records.append({"layout": table.name, "kind": kind,
                                 "count": count, "examples": examples})

    def _table(self, layout) -> _LayoutTable:
        table = self._tables.get(id(layout))
        if table is None:
            table = _LayoutTable(layout)
            self._tables[id(layout)] = table
            self._keepalive.append(layout)
            self.counters["layouts"] += 1
            trace.add("sanitize.layouts", 1)
            if table.structural is not None:
                self._violate(table, *table.structural)
        return table

    # -- the hook ------------------------------------------------------------

    def __call__(self, layout, offsets) -> None:
        """Validate one batch of buffer offsets produced by ``layout``."""
        table = self._table(layout)
        offs = np.asarray(offsets).ravel()
        self.counters["batches"] += 1
        self.counters["accesses"] += int(offs.size)
        trace.add("sanitize.batches", 1)
        trace.add("sanitize.accesses", int(offs.size))
        oob = offs[(offs < 0) | (offs >= table.buffer_size)]
        if oob.size:
            self._violate(table, "out-of-allocation", int(oob.size),
                          [int(v) for v in oob[:4]])
            offs = offs[(offs >= 0) & (offs < table.buffer_size)]
        unmapped = offs[~table.valid[offs]]
        if unmapped.size:
            self._violate(table, "unmapped-address", int(unmapped.size),
                          [int(v) for v in unmapped[:4]])

    def stats(self) -> Dict[str, int]:
        """A copy of the counter tallies (accesses, violations, kinds)."""
        return dict(self.counters)


# -- module-level switch ---------------------------------------------------------

_SANITIZER: Optional[AccessSanitizer] = None


def enable(mode: str = "strict",
           sanitizer: Optional[AccessSanitizer] = None) -> AccessSanitizer:
    """Install an access sanitizer into the Grid hot path; returns it."""
    global _SANITIZER
    _SANITIZER = sanitizer if sanitizer is not None else AccessSanitizer(mode)
    _grid._install_access_check(_SANITIZER)
    return _SANITIZER


def disable() -> Optional[AccessSanitizer]:
    """Uninstall the sanitizer; returns it (for reading final stats)."""
    global _SANITIZER
    sanitizer, _SANITIZER = _SANITIZER, None
    _grid._install_access_check(None)
    return sanitizer


def is_enabled() -> bool:
    """True while an access sanitizer is installed."""
    return _SANITIZER is not None


def current() -> Optional[AccessSanitizer]:
    """The installed sanitizer, or None."""
    return _SANITIZER


def enable_from_env(environ=None) -> Optional[AccessSanitizer]:
    """Honor ``REPRO_SANITIZE``; called at ``repro.memsim`` import.

    Returns the sanitizer when the variable asked for one, else None.
    Worker processes inherit the variable, so ``--sanitize`` (which
    exports it) covers parallel runs too.
    """
    value = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    value = value.strip().lower()
    if value in ("", "0", "off", "no", "false"):
        return None
    return enable("report" if value == "report" else "strict")
