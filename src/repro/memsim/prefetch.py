"""Stream (next-line) prefetching — an optional hierarchy extension.

The paper's platforms have hardware prefetchers that our base model
omits; EXPERIMENTS.md lists this as a threat to validity, because
sequential array-order streams are exactly what next-line prefetchers
accelerate.  This module adds a simple per-core stream prefetcher in the
style of the classic N-line sequential prefetcher: it watches the
request stream arriving at a cache level, detects ascending *or*
descending unit-stride line runs, and installs the next ``degree`` lines
of a confirmed run into that cache (without charging the demand stream).

Attach one via :class:`LevelSpec.prefetch <repro.memsim.hierarchy.LevelSpec>`;
ablation A6 (``benchmarks/test_ablation_prefetch.py``) measures how much
of array-order's off-axis penalty it recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import Cache

__all__ = ["PrefetchConfig", "StreamPrefetcher"]


@dataclass(frozen=True)
class PrefetchConfig:
    """Stream-prefetcher parameters.

    Attributes
    ----------
    degree : int
        Lines fetched ahead once a stream is confirmed.
    confirm : int
        Consecutive unit-stride requests needed to confirm a stream
        (2 = the second sequential miss starts prefetching).
    """

    degree: int = 2
    confirm: int = 2

    def __post_init__(self):
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")
        if self.confirm < 2:
            raise ValueError(f"confirm must be >= 2, got {self.confirm}")


class StreamPrefetcher:
    """Per-core detector + issuer for one cache instance.

    State is one active stream (last line, direction, run length) per
    prefetcher — the single-stream simplification is conservative: a
    real 16-stream prefetcher would help sequential code *more*, so any
    array-order recovery this model shows is a lower bound.
    """

    def __init__(self, config: PrefetchConfig):
        self.config = config
        self._last: int = -(1 << 60)
        self._direction: int = 0
        self._run: int = 1
        self.issued: int = 0
        self.installed: int = 0

    def observe_and_fill(self, lines: np.ndarray, cache: Cache) -> int:
        """Watch a request batch; install predicted lines into ``cache``.

        Returns the number of prefetches issued for this batch.
        """
        cfg = self.config
        issued_before = self.issued
        to_install = []
        last, direction, run = self._last, self._direction, self._run
        for ln in np.asarray(lines, dtype=np.int64).tolist():
            step = ln - last
            if step == direction and direction != 0:
                run += 1
            elif step == 1 or step == -1:
                direction = step
                run = 2
            else:
                direction = 0
                run = 1
            if direction != 0 and run >= cfg.confirm:
                for d in range(1, cfg.degree + 1):
                    to_install.append(ln + direction * d)
            last = ln
        self._last, self._direction, self._run = last, direction, run
        if to_install:
            self.issued += len(to_install)
            self.installed += cache.install_lines(
                np.array(to_install, dtype=np.int64))
        return self.issued - issued_before

    def reset(self) -> None:
        """Forget the active stream and zero the counters."""
        self._last = -(1 << 60)
        self._direction = 0
        self._run = 1
        self.issued = 0
        self.installed = 0
