"""Address-space bookkeeping for simulated grids.

Each :class:`~repro.core.grid.Grid` that participates in a simulation is
registered here and receives a line-aligned byte base address, so that
offsets from different grids never alias in the cache model (input
volume vs. output volume, for instance).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.grid import Grid
from .trace import offsets_to_lines

__all__ = ["AddressSpace"]


class AddressSpace:
    """Allocates disjoint, line-aligned byte ranges to grids.

    Parameters
    ----------
    line_bytes : int
        Cache-line size; every allocation is aligned to it (and further
        to 4 KB pages, matching what a real allocator would hand a large
        volume).
    """

    PAGE = 4096

    def __init__(self, line_bytes: int = 64):
        self.line_bytes = int(line_bytes)
        self._next = self.PAGE  # never hand out address 0
        self._bases: Dict[int, int] = {}

    def register(self, grid: Grid) -> int:
        """Assign (or return the existing) base byte address for ``grid``."""
        return self.register_object(grid, grid.layout.buffer_size * grid.itemsize)

    def register_object(self, obj, nbytes: int) -> int:
        """Assign a base address to any object owning ``nbytes`` of data.

        Used for non-Grid structures the simulator should see at their
        own addresses (acceleration structures, lookup tables, 2-D
        grids).  Idempotent per object identity.
        """
        key = id(obj)
        if key not in self._bases:
            if nbytes < 0:
                raise ValueError(f"nbytes must be >= 0, got {nbytes}")
            self._bases[key] = self._next
            self._next += -(-int(nbytes) // self.PAGE) * self.PAGE + self.PAGE
        return self._bases[key]

    def base_of(self, grid: Grid) -> int:
        """Base address of a registered grid."""
        try:
            return self._bases[id(grid)]
        except KeyError:
            raise KeyError("grid was never registered in this address space") from None

    def lines_for(self, grid: Grid, offsets: np.ndarray) -> np.ndarray:
        """Cache-line ids for element ``offsets`` of ``grid`` (auto-registers)."""
        base = self.register(grid)
        return offsets_to_lines(offsets, grid.itemsize, self.line_bytes, base)
