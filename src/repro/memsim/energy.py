"""Memory-system energy model (the Reissmann et al. dimension).

The paper cites Reissmann, Meyer & Jahre's study of *energy* and
locality effects of SFC layouts.  Energy is largely a re-weighting of
the same service counts the runtime model uses — but with very different
weights: a DRAM access costs two orders of magnitude more energy than an
L1 hit, so layouts that keep traffic on-chip save disproportionate
energy.  Default per-access energies follow the usual 45/32 nm
literature ballpark (Han/Horowitz-style numbers, scaled to whole
cache accesses rather than bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .hierarchy import PlatformSpec, ServiceCounts

__all__ = ["EnergyModel", "DEFAULT_ACCESS_ENERGY_NJ"]

#: Ball-park energy per access, in nanojoules, by level name.
DEFAULT_ACCESS_ENERGY_NJ: Dict[str, float] = {
    "L1": 0.05,
    "L2": 0.25,
    "L3": 1.0,
    "MEM": 20.0,
}


@dataclass(frozen=True)
class EnergyModel:
    """Convert service counts to energy.

    Attributes
    ----------
    access_energy_nj : dict
        Per-access energy (nJ) by level name, plus the ``"MEM"`` key;
        levels absent from the dict fall back to the ``"L3"`` entry (or
        the largest cache entry present).
    compute_energy_nj_per_op : float
        Arithmetic energy per kernel op.
    static_power_w : float
        Leakage/background power, charged over the modelled runtime when
        one is supplied to :meth:`total_joules`.
    """

    access_energy_nj: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ACCESS_ENERGY_NJ))
    compute_energy_nj_per_op: float = 0.01
    static_power_w: float = 10.0

    def _level_energy(self, name: str) -> float:
        if name in self.access_energy_nj:
            return self.access_energy_nj[name]
        cache_only = {k: v for k, v in self.access_energy_nj.items()
                      if k != "MEM"}
        if not cache_only:
            raise KeyError(f"no energy entry usable for level {name!r}")
        return max(cache_only.values())

    def access_joules(self, counts: ServiceCounts) -> float:
        """Energy of the memory traffic in ``counts`` (joules)."""
        nj = 0.0
        for name, served in counts.per_level.items():
            nj += served * self._level_energy(name)
        nj += counts.mem * self.access_energy_nj.get("MEM", 20.0)
        return nj * 1e-9

    def compute_joules(self, n_ops: int) -> float:
        """Arithmetic energy for ``n_ops`` kernel operations."""
        return n_ops * self.compute_energy_nj_per_op * 1e-9

    def total_joules(self, counts: ServiceCounts, n_ops: int,
                     runtime_seconds: float = 0.0) -> float:
        """Dynamic (access + compute) plus static energy over the runtime."""
        return (self.access_joules(counts)
                + self.compute_joules(n_ops)
                + self.static_power_w * runtime_seconds)


def energy_of_result(result, model: "EnergyModel" = None,
                     n_ops: int = 0) -> float:
    """Energy of a :class:`~repro.memsim.engine.SimResult` (joules).

    Uses the result's (already extrapolated) per-level service totals
    and its cost-model runtime for the static term.
    """
    model = model or EnergyModel()
    counts = ServiceCounts(
        per_level={k: int(v) for k, v in result.level_served.items()
                   if k != "MEM"},
        mem=int(result.level_served.get("MEM", 0)),
    )
    return model.total_joules(counts, n_ops,
                              runtime_seconds=result.runtime_seconds)
