"""Platform presets: the paper's two test machines, plus scaled variants.

``EDISON_IVYBRIDGE`` models a NERSC Edison compute node as described in
Section IV-A: two 2.4 GHz 12-core Intel Ivy Bridge processors; per core
64 KB L1 and 256 KB L2; one 30 MB L3 shared per processor.  The paper's
headline counter there is ``PAPI_L3_TCA`` (total L3 cache accesses,
i.e. requests L1/L2 could not satisfy).

``BABBAGE_MIC`` models one Babbage MIC (Knights Corner 5110P-class)
card: 60 cores (59 usable for the application, one reserved for the OS)
at ~1.05 GHz, 4 hardware threads per core, per-core 32 KB L1 and 512 KB
L2 (the LLC — there is no L3), GDDR5 memory.  The paper's counter there
is ``L2_DATA_READ_MISS_MEM_FILL`` (L2 read misses filled from memory).

Real-capacity presets are faithful to the hardware but demand 512³-class
volumes to stress; :func:`scaled` variants divide every capacity by a
factor so that proportionally smaller volumes cross the same cache-fit
boundaries (see DESIGN.md §2).
"""

from __future__ import annotations

from .cache import CacheConfig
from .hierarchy import LevelSpec, PlatformSpec

__all__ = [
    "EDISON_IVYBRIDGE",
    "BABBAGE_MIC",
    "scaled_ivybridge",
    "scaled_mic",
    "with_replacement",
    "PLATFORMS",
    "get_platform",
]

EDISON_IVYBRIDGE = PlatformSpec(
    name="edison-ivybridge",
    n_cores=24,
    n_sockets=2,
    smt=1,
    freq_ghz=2.4,
    levels=(
        LevelSpec(
            cache=CacheConfig("L1", 64 * 1024, line_bytes=64, ways=8),
            scope="core",
            latency_cycles=4.0,
        ),
        LevelSpec(
            cache=CacheConfig("L2", 256 * 1024, line_bytes=64, ways=8),
            scope="core",
            latency_cycles=12.0,
        ),
        LevelSpec(
            # 30 MB with 30 ways gives a power-of-two 16384 sets
            cache=CacheConfig("L3", 30 * 1024 * 1024, line_bytes=64, ways=30),
            scope="socket",
            latency_cycles=36.0,
        ),
    ),
    mem_latency_cycles=230.0,
    mem_parallelism=4.0,
    counters={
        "PAPI_L1_TCA": ("L1", "accesses"),
        "PAPI_L1_TCM": ("L1", "misses"),
        "PAPI_L2_TCA": ("L2", "accesses"),
        "PAPI_L2_TCM": ("L2", "misses"),
        "PAPI_L3_TCA": ("L3", "accesses"),
        "PAPI_L3_TCM": ("L3", "misses"),
        "PAPI_TLB_DM": ("TLB", "misses"),
    },
    # Ivy Bridge 64-entry 4-way data TLB over 4 KB pages
    tlb=CacheConfig("TLB", 64 * 4096, line_bytes=4096, ways=4),
    tlb_miss_cycles=30.0,
)

BABBAGE_MIC = PlatformSpec(
    name="babbage-mic",
    n_cores=60,
    n_sockets=1,
    smt=4,
    freq_ghz=1.053,
    levels=(
        LevelSpec(
            cache=CacheConfig("L1", 32 * 1024, line_bytes=64, ways=8),
            scope="core",
            latency_cycles=3.0,
        ),
        LevelSpec(
            cache=CacheConfig("L2", 512 * 1024, line_bytes=64, ways=8),
            scope="core",
            latency_cycles=24.0,
        ),
    ),
    mem_latency_cycles=350.0,
    # in-order cores sustain less memory-level parallelism than Ivy Bridge
    mem_parallelism=2.0,
    counters={
        "L1_DATA_READ": ("L1", "accesses"),
        "L1_DATA_READ_MISS": ("L1", "misses"),
        "L2_DATA_READ": ("L2", "accesses"),
        # no L3: every L2 read miss is filled from GDDR5
        "L2_DATA_READ_MISS_MEM_FILL": ("L2", "misses"),
        "DATA_PAGE_WALK": ("TLB", "misses"),
    },
    # KNC 64-entry 4-way micro-dTLB over 4 KB pages
    tlb=CacheConfig("TLB", 64 * 4096, line_bytes=4096, ways=4),
    tlb_miss_cycles=100.0,
)


def scaled_ivybridge(factor: int = 64) -> PlatformSpec:
    """Ivy Bridge preset with capacities divided by ``factor``.

    ``factor=64`` pairs with 64³ volumes the way the real machine pairs
    with 512³ (the per-plane working set scales with N², and 512²/64² =
    64).
    """
    return EDISON_IVYBRIDGE.scaled(factor, suffix=f"-scaled{factor}")


def scaled_mic(factor: int = 64) -> PlatformSpec:
    """MIC preset with capacities divided by ``factor``."""
    return BABBAGE_MIC.scaled(factor, suffix=f"-scaled{factor}")


def with_replacement(spec: PlatformSpec, policy: str,
                     levels: tuple = ("L1", "L2")) -> PlatformSpec:
    """A platform variant with a different replacement policy.

    Only the named levels are changed (the Ivy Bridge L3's 30-way
    geometry cannot host tree-PLRU, which needs power-of-two ways), so
    the default leaves the LLC on LRU.  Used by the replacement-policy
    sensitivity ablation (A13).
    """
    from dataclasses import replace as _replace

    new_levels = []
    for level in spec.levels:
        if level.cache.name in levels:
            new_levels.append(_replace(
                level, cache=_replace(level.cache, replacement=policy)))
        else:
            new_levels.append(level)
    return _replace(spec, name=f"{spec.name}-{policy}",
                    levels=tuple(new_levels))


PLATFORMS = {
    "ivybridge": EDISON_IVYBRIDGE,
    "mic": BABBAGE_MIC,
}


def get_platform(name: str, scale: int = 1) -> PlatformSpec:
    """Look up a platform preset by short name, optionally scaled."""
    try:
        spec = PLATFORMS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; known: {sorted(PLATFORMS)}"
        ) from None
    return spec if scale == 1 else spec.scaled(scale, suffix=f"-scaled{scale}")
