"""Access-trace utilities: offsets → byte addresses → cache-line ids.

Kernels express their reads as buffer *offsets* (elements) into a grid;
the simulator wants cache-line ids.  The conversion is vectorized and
includes consecutive-same-line collapsing, which is exact for hit/miss
accounting at every level (a back-to-back repeat of a line is always an
L1 hit) and typically shrinks stencil traces several-fold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

__all__ = ["offsets_to_lines", "collapse_consecutive", "TraceChunk", "concat_chunks"]


def offsets_to_lines(offsets: np.ndarray, itemsize: int, line_bytes: int,
                     base_bytes: int = 0) -> np.ndarray:
    """Map element offsets to cache-line ids.

    Parameters
    ----------
    offsets : int array
        Element offsets into a buffer.
    itemsize : int
        Bytes per element.
    line_bytes : int
        Cache-line size.
    base_bytes : int
        Byte address where the buffer starts (keeps distinct grids in
        distinct, non-aliasing address ranges).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    return (base_bytes + offsets * itemsize) // line_bytes


def collapse_consecutive(lines: np.ndarray) -> Tuple[np.ndarray, int]:
    """Drop back-to-back repeats of the same line.

    Returns ``(collapsed, n_removed)``.  ``n_removed`` accesses were
    guaranteed L1 hits and are credited as such by the engine.
    """
    lines = np.asarray(lines, dtype=np.int64)
    if lines.size <= 1:
        return lines, 0
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    collapsed = lines[keep]
    return collapsed, int(lines.size - collapsed.size)


@dataclass
class TraceChunk:
    """One work item's worth of memory traffic plus its compute weight.

    Attributes
    ----------
    lines : np.ndarray
        Line ids in access order (already collapsed).
    collapsed_hits : int
        Accesses removed by consecutive-line collapsing (exact L1 hits).
    n_ops : int
        Arithmetic operations performed for this chunk (drives the
        compute term of the cost model).
    """

    lines: np.ndarray
    collapsed_hits: int = 0
    n_ops: int = 0

    @classmethod
    def from_offsets(cls, offsets: np.ndarray, itemsize: int, line_bytes: int,
                     base_bytes: int = 0, n_ops: int = 0) -> "TraceChunk":
        """Build a chunk from element offsets (collapse included)."""
        lines = offsets_to_lines(offsets, itemsize, line_bytes, base_bytes)
        collapsed, removed = collapse_consecutive(lines)
        return cls(lines=collapsed, collapsed_hits=removed, n_ops=n_ops)

    @property
    def n_accesses(self) -> int:
        """Original access count (simulated + collapsed)."""
        return int(self.lines.size) + self.collapsed_hits


def concat_chunks(chunks: List[TraceChunk]) -> TraceChunk:
    """Concatenate chunks in order, re-collapsing at the seams."""
    if not chunks:
        return TraceChunk(lines=np.empty(0, dtype=np.int64))
    lines = np.concatenate([c.lines for c in chunks])
    collapsed, removed = collapse_consecutive(lines)
    return TraceChunk(
        lines=collapsed,
        collapsed_hits=sum(c.collapsed_hits for c in chunks) + removed,
        n_ops=sum(c.n_ops for c in chunks),
    )
