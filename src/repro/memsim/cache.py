"""Set-associative cache simulation.

The substitute for the paper's hardware: instead of reading PAPI
counters off Ivy Bridge / MIC silicon, we drive software caches with the
exact line-address streams the kernels generate and count hits/misses
directly.  Caches are set-associative with configurable line size,
associativity, and replacement policy (LRU, FIFO, tree-PLRU, random, and
a fully-vectorized direct-mapped fast path).

Only reads are simulated (the studied kernels are read-dominated:
stencil gathers and ray sampling; their writes are streaming stores of
output pencils/pixels which the paper's counters — L3 total cache
accesses, L2 data *read* miss — do not emphasize).  Write traffic can be
fed through the same ``access_lines`` if desired.

Replay backends
---------------
Two interchangeable, bit-for-bit-equivalent replay implementations:

``scalar``
    The original per-access Python loop over per-set lists.  Simple,
    obviously correct, and the reference oracle for the equivalence
    suite.  Fastest when the cache has very few sets (the heavily
    ``scaled()`` experiment geometries), where batch partitioning has
    nothing to fan out over.
``vector``
    Batched numpy replay in two phases.  A *collapse* prefilter first
    removes every access whose previous same-set access was the same
    line — a guaranteed hit that provably changes no policy's state
    (LRU re-touches the MRU way, FIFO/random ignore hits, the PLRU
    steering update is idempotent) — which on stencil streams strips
    95%+ of the batch with a handful of array ops.  The small residual
    is then replayed in *rounds*: round ``r`` applies the ``r``-th
    surviving access of every touched set in one fused gather/scatter
    (each round touches a set at most once, so the transition is
    conflict-free).  State lives in a dense ``(n_sets, ways)`` tag
    matrix (recency-ordered for LRU/FIFO, way-indexed for PLRU).
``auto``
    Picks ``vector`` when the geometry is wide enough for the fan-out
    to pay (``n_sets >= 64``), else ``scalar``.

Random replacement draws victims from a counter-based keyed hash
(splitmix64 over ``(seed, set, eviction ordinal)``), not from a
stateful RNG stream: victim choices therefore depend only on the
per-set eviction history — never on how the trace was chunked into
``access_lines`` calls (the engine's interleaving quantum) or on any
global RNG state — which keeps multi-process experiment replays
reproducible run-to-run and lets both backends agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.bits import ilog2, is_power_of_two

__all__ = ["CacheConfig", "CacheStats", "Cache", "REPLACEMENT_POLICIES",
           "REPLAY_BACKENDS"]

REPLACEMENT_POLICIES = ("lru", "fifo", "plru", "random", "direct")
REPLAY_BACKENDS = ("scalar", "vector", "auto")

#: ``backend="auto"`` switches to the vectorized replay at this set
#: count: below it, per-round batches are too small for numpy-call
#: overhead to amortize and the plain Python loop wins.
_AUTO_MIN_SETS = 64

#: After the collapse prefilter, replay the residual with a plain
#: per-access loop when the average round would be narrower than this.
#: A round costs ~15us of fixed numpy-call overhead regardless of
#: width, a looped access ~0.3us, so skewed residuals (few sets, deep
#: per-set sequences) replay much faster element-wise.
_RESIDUAL_LOOP_WIDTH = 128

# -- counter-based victim hash (random replacement) ---------------------------

_U64 = (1 << 64) - 1
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB
_SEED_MUL = 0x632BE59BD9B4E019
_SET_MUL = 0xD1B54A32D192ED03


def _victim_way(seed: int, set_idx: int, ordinal: int, ways: int) -> int:
    """Victim way for the ``ordinal``-th eviction in ``set_idx`` (scalar)."""
    x = (seed * _SEED_MUL + set_idx * _SET_MUL + ordinal) & _U64
    x = (x + _SM_GAMMA) & _U64
    x = ((x ^ (x >> 30)) * _SM_MUL1) & _U64
    x = ((x ^ (x >> 27)) * _SM_MUL2) & _U64
    x = x ^ (x >> 31)
    return x % ways


def _victim_way_arr(seed: int, set_idx: np.ndarray, ordinal: np.ndarray,
                    ways: int) -> np.ndarray:
    """Vectorized :func:`_victim_way` (identical values, uint64 wraparound)."""
    x = (set_idx.astype(np.uint64) * np.uint64(_SET_MUL)
         + ordinal.astype(np.uint64)
         + np.uint64((seed * _SEED_MUL) & _U64))
    x = x + np.uint64(_SM_GAMMA)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_SM_MUL1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_SM_MUL2)
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(ways)).astype(np.int64)


def _collapse_batch(lines: np.ndarray, set_mask: int, n_sets: int):
    """Two-stage guaranteed-hit collapse + per-set round schedule.

    An access whose previous same-set access (in the full stream) was
    the *same line* is a guaranteed hit that leaves every policy's
    state bit-identical: LRU re-touches the already-MRU way, FIFO and
    random do nothing on a hit, and the PLRU steering update is
    idempotent.  The property composes along chains, so such accesses
    can be dropped before replay without affecting anything downstream.

    Stage 1 catches short-range repeats with pure shifts:
    ``lines[i] == lines[i-k]`` (k = 2..4) with every intervening access
    in a different set.  Stage 2 stable-sorts the survivors by set
    index and drops each access equal to its in-set predecessor.
    Stencil streams collapse by ~95%+; the round replay then runs on
    the small residual only.

    Returns ``(r_lines, r_sets, rank, miss_positions)``: the residual
    in sorted-by-set order (stable, so each set's access order is
    preserved), each access's ``rank`` within its set, and
    ``miss_positions(hits_res)`` which maps residual hit flags to the
    original batch positions of the misses, ascending (collapsed
    accesses are hits by construction, so misses only live in the
    residual).
    """
    n = lines.size
    sets = lines & set_mask
    # narrow keys take numpy's radix-sort path (~8x faster argsort)
    keys = sets.astype(np.uint16) if n_sets <= 65536 else sets
    # stage 1: lines[i] == lines[i-k], no intervening same-set access
    recent = np.zeros(n, dtype=bool)
    for k in (2, 3, 4):
        if n <= k:
            break
        cond = lines[k:] == lines[:-k]
        for j in range(1, k):
            cond &= keys[k - j:-j] != keys[k:]
        recent[k:] |= cond
    if recent.any():
        keep = np.flatnonzero(~recent)
        kk = keys[keep]
    else:
        keep = None
        kk = keys
    m0 = kk.size  # >= 1: indices 0..1 are never collapsed
    # stage 2: group by set, drop in-set duplicate runs.  ko maps the
    # sorted survivors straight back to original batch positions.
    order = np.argsort(kk, kind="stable")
    ko = order if keep is None else keep[order]
    sl = lines[ko]
    ss = kk[order]
    dup = np.empty(m0, dtype=bool)
    dup[0] = False
    np.logical_and(ss[1:] == ss[:-1], sl[1:] == sl[:-1], out=dup[1:])
    res = ~dup
    r_lines = sl[res]
    r_sets = ss[res].astype(np.int64)
    m = r_lines.size  # >= 1: the first sorted access always survives
    # rank = each residual access's position within its set
    new_grp = np.empty(m, dtype=bool)
    new_grp[0] = True
    np.not_equal(r_sets[1:], r_sets[:-1], out=new_grp[1:])
    grp_start = np.flatnonzero(new_grp)
    grp_id = np.cumsum(new_grp) - 1
    rank = np.arange(m, dtype=np.int64) - grp_start[grp_id]

    def miss_positions(hits_res: np.ndarray) -> np.ndarray:
        mp = ko[res][~hits_res]
        mp.sort()  # ascending position = original stream order
        return mp

    return r_lines, r_sets, rank, miss_positions


def _round_schedule(rank: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Conflict-free replay rounds from residual ranks.

    Returns ``(round_order, offsets)``: ``round_order[offsets[r]:
    offsets[r+1]]`` indexes each set's ``r``-th residual access, so a
    round touches every set at most once and its state transition is a
    single gather/scatter.
    """
    counts = np.bincount(rank)
    offsets = np.empty(counts.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    if rank.size <= 65536:  # radix-sortable narrow keys
        rank = rank.astype(np.uint16)
    round_order = np.argsort(rank, kind="stable")
    return round_order, offsets


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache.

    Parameters
    ----------
    name : str
        Level label ("L1", "L2", "L3").
    capacity_bytes : int
        Total data capacity.  Must be ``n_sets * ways * line_bytes`` with
        ``n_sets`` a power of two.
    line_bytes : int
        Cache-line size (64 on both of the paper's platforms).
    ways : int
        Associativity.  ``replacement="direct"`` forces ways == 1.
    replacement : str
        One of ``lru`` (default), ``fifo``, ``plru``, ``random``,
        ``direct`` (direct-mapped, vectorized fast path).
    """

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    ways: int = 8
    replacement: str = "lru"

    def __post_init__(self):
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement {self.replacement!r}; "
                f"choose from {REPLACEMENT_POLICIES}"
            )
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.replacement == "direct" and self.ways != 1:
            raise ValueError("direct-mapped caches must have ways == 1")
        if self.ways <= 0:
            raise ValueError(f"ways must be positive, got {self.ways}")
        if self.replacement == "plru" and not is_power_of_two(self.ways):
            raise ValueError("tree-PLRU requires power-of-two associativity")
        n_sets, rem = divmod(self.capacity_bytes, self.ways * self.line_bytes)
        if rem or n_sets <= 0 or not is_power_of_two(n_sets):
            raise ValueError(
                f"capacity {self.capacity_bytes} is not line*ways*2^k "
                f"(line={self.line_bytes}, ways={self.ways})"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.ways * self.line_bytes)

    @property
    def n_lines(self) -> int:
        """Total line slots."""
        return self.n_sets * self.ways

    def scaled(self, factor: int) -> "CacheConfig":
        """Capacity divided by ``factor`` (rounded down to a valid geometry).

        Associativity and line size are preserved; the set count shrinks
        to the nearest power of two, with a floor of one set.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        target_sets = max(1, self.n_sets // factor)
        n_sets = 1 << ilog2(target_sets) if is_power_of_two(target_sets) else (
            1 << (target_sets.bit_length() - 1)
        )
        return CacheConfig(
            name=self.name,
            capacity_bytes=n_sets * self.ways * self.line_bytes,
            line_bytes=self.line_bytes,
            ways=self.ways,
            replacement=self.replacement,
        )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance.

    ``evictions`` counts demand-access replacements of a *resident* line
    (cold fills into empty ways are not evictions; prefetch installs and
    invalidations never touch any counter).
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (1.0 for an untouched cache)."""
        return self.hits / self.accesses if self.accesses else 1.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum (for aggregating per-core instances)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class Cache:
    """One simulated cache; feed it line ids, get back the missed ones.

    Line ids are byte addresses divided by ``line_bytes`` (the division
    happens upstream, once, vectorized).  State persists across calls so
    a cache can be shared between interleaved threads.

    ``backend`` selects the replay implementation (see the module
    docstring): ``"scalar"``, ``"vector"``, or ``"auto"``.  Both
    backends produce bit-for-bit identical misses, counters, and
    eviction sets; ``tests/memsim/test_cache_backends.py`` pins this.
    """

    def __init__(self, config: CacheConfig, seed: int = 0,
                 backend: str = "auto"):
        if backend not in REPLAY_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {REPLAY_BACKENDS}"
            )
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.n_sets - 1
        self._seed = seed
        if backend == "auto":
            backend = ("vector" if config.replacement != "direct"
                       and config.n_sets >= _AUTO_MIN_SETS else "scalar")
        self.backend = backend
        #: lines evicted by the most recent access_lines call (filled only
        #: when track_evictions is on — the inclusive-hierarchy hook)
        self.track_evictions = False
        self.last_evicted: list = []
        self.reset()

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        cfg = self.config
        self.stats = CacheStats()
        self.last_evicted = []
        if cfg.replacement == "random":
            # per-set eviction ordinals feeding the victim hash
            self._evict_seq = np.zeros(cfg.n_sets, dtype=np.int64)
        if cfg.replacement == "direct":
            self._dm_state = np.full(cfg.n_sets, -1, dtype=np.int64)
        elif self.backend == "vector":
            # dense tag matrix: recency-ordered (MRU first, -1 empty at
            # the tail) for lru/fifo/random, way-indexed for plru
            self._tags = np.full((cfg.n_sets, cfg.ways), -1, dtype=np.int64)
            if cfg.replacement == "plru":
                self._tree_v = np.zeros(cfg.n_sets, dtype=np.int64)
        elif cfg.replacement == "plru":
            # way-resident line per set, plus the PLRU tree bits per set
            self._lines = [[-1] * cfg.ways for _ in range(cfg.n_sets)]
            self._tree = [0] * cfg.n_sets
        else:
            # lru / fifo / random: per-set list of resident line ids.
            # For LRU the list is MRU-first; for FIFO it is insertion order
            # newest-first; for random order is the append/replace order
            # the victim hash indexes into.
            self._sets: List[list] = [[] for _ in range(cfg.n_sets)]

    # -- main entry ------------------------------------------------------------

    def access_lines(self, lines) -> np.ndarray:
        """Access ``lines`` in order; return the missed lines, in order.

        Misses insert the line (fill on miss, i.e. allocate-on-read).
        """
        lines = np.asarray(lines, dtype=np.int64)
        if self.track_evictions:
            self.last_evicted = []
        if lines.size == 0:
            return lines
        policy = self.config.replacement
        if policy == "direct":
            return self._access_direct(lines)
        if self.backend == "vector":
            missed_idx = self._vec_replay(lines, policy,
                                          track=self.track_evictions,
                                          count_evictions=True)
            self.stats.accesses += lines.size
            self.stats.misses += missed_idx.size
            self.stats.hits += lines.size - missed_idx.size
            return lines[missed_idx]
        if policy == "lru":
            missed = self._access_lru(lines)
        elif policy == "fifo":
            missed = self._access_fifo(lines)
        elif policy == "random":
            missed = self._access_random(lines)
        else:
            missed = self._access_plru(lines)
        self.stats.accesses += lines.size
        self.stats.misses += len(missed)
        self.stats.hits += lines.size - len(missed)
        return np.asarray(missed, dtype=np.int64)

    # -- scalar policies (the reference oracle) ---------------------------------

    def _access_lru(self, lines: np.ndarray) -> list:
        sets = self._sets
        mask = self._set_mask
        ways = self.config.ways
        track = self.track_evictions
        missed: list = []
        ap = missed.append
        for ln in lines.tolist():
            s = sets[ln & mask]
            if ln in s:
                if s[0] != ln:
                    s.remove(ln)
                    s.insert(0, ln)
            else:
                ap(ln)
                s.insert(0, ln)
                if len(s) > ways:
                    victim = s.pop()
                    self.stats.evictions += 1
                    if track:
                        self.last_evicted.append(victim)
        return missed

    def _access_fifo(self, lines: np.ndarray) -> list:
        sets = self._sets
        mask = self._set_mask
        ways = self.config.ways
        missed: list = []
        ap = missed.append
        for ln in lines.tolist():
            s = sets[ln & mask]
            if ln not in s:
                ap(ln)
                s.insert(0, ln)
                if len(s) > ways:
                    victim = s.pop()
                    self.stats.evictions += 1
                    if self.track_evictions:
                        self.last_evicted.append(victim)
        return missed

    def _access_random(self, lines: np.ndarray) -> list:
        sets = self._sets
        mask = self._set_mask
        ways = self.config.ways
        seed = self._seed
        seq = self._evict_seq
        missed: list = []
        ap = missed.append
        for ln in lines.tolist():
            si = ln & mask
            s = sets[si]
            if ln not in s:
                ap(ln)
                if len(s) < ways:
                    s.append(ln)
                else:
                    v = _victim_way(seed, si, int(seq[si]), ways)
                    seq[si] += 1
                    self.stats.evictions += 1
                    if self.track_evictions:
                        self.last_evicted.append(s[v])
                    s[v] = ln
        return missed

    def _access_plru(self, lines: np.ndarray) -> list:
        """Tree-PLRU: one bit per internal node steers victim selection."""
        ways = self.config.ways
        levels = ways.bit_length() - 1  # ways is a power of two
        mask = self._set_mask
        lines_tab = self._lines
        tree_tab = self._tree
        missed: list = []
        ap = missed.append
        for ln in lines.tolist():
            si = ln & mask
            resident = lines_tab[si]
            tree = tree_tab[si]
            try:
                way = resident.index(ln)
                hit = True
            except ValueError:
                hit = False
            if not hit:
                ap(ln)
                # walk the tree following the PLRU bits to the victim leaf
                node = 0
                way = 0
                for _ in range(levels):
                    bit = (tree >> node) & 1
                    way = (way << 1) | bit
                    node = 2 * node + 1 + bit
                if resident[way] >= 0:
                    self.stats.evictions += 1
                    if self.track_evictions:
                        self.last_evicted.append(resident[way])
                resident[way] = ln
            # update tree bits to point *away* from this way on the path
            node = 0
            for lvl in range(levels - 1, -1, -1):
                bit = (way >> lvl) & 1
                if bit:
                    tree &= ~(1 << node)
                else:
                    tree |= 1 << node
                node = 2 * node + 1 + bit
            tree_tab[si] = tree
        return missed

    def _access_direct(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized direct-mapped path (no Python per-access loop).

        Exact: a direct-mapped hit happens iff the previous access to the
        same set (within this batch, or the persisted state for the first
        such access) was the same line.
        """
        state = self._dm_state
        sets = lines & self._set_mask
        order = np.argsort(sets, kind="stable")
        s_lines = lines[order]
        s_sets = sets[order]
        hit_sorted = np.empty(lines.size, dtype=bool)
        same_set = np.empty(lines.size, dtype=bool)
        same_set[0] = False
        same_set[1:] = s_sets[1:] == s_sets[:-1]
        prev_line = np.empty_like(s_lines)
        prev_line[0] = -1
        prev_line[1:] = s_lines[:-1]
        # first access per set in the batch compares against persisted state
        first_of_set = ~same_set
        hit_sorted = np.where(first_of_set, state[s_sets] == s_lines,
                              prev_line == s_lines)
        # a miss evicts unless it filled a slot that was empty — only the
        # first access per set can find an empty slot
        filled_empty = first_of_set & (state[s_sets] < 0)
        if self.track_evictions:
            # any resident line replaced during the batch was evicted:
            # walk the per-set subsequences (small python loop over misses)
            prev_state = state.copy()
            for s_idx, ln, hit in zip(s_sets.tolist(), s_lines.tolist(),
                                      hit_sorted.tolist()):
                if not hit:
                    old = prev_state[s_idx]
                    if old >= 0 and old != ln:
                        self.last_evicted.append(int(old))
                    prev_state[s_idx] = ln
        # persist the last line per set
        last_of_set = np.empty(lines.size, dtype=bool)
        last_of_set[:-1] = s_sets[:-1] != s_sets[1:]
        last_of_set[-1] = True
        state[s_sets[last_of_set]] = s_lines[last_of_set]
        hits = np.empty(lines.size, dtype=bool)
        hits[order] = hit_sorted
        self.stats.accesses += lines.size
        n_hits = int(hits.sum())
        self.stats.hits += n_hits
        n_misses = lines.size - n_hits
        self.stats.misses += n_misses
        self.stats.evictions += n_misses - int(filled_empty.sum())
        return lines[~hits]

    # -- vectorized replay -------------------------------------------------------

    def _vec_replay(self, lines: np.ndarray, policy: str, track: bool,
                    count_evictions: bool) -> np.ndarray:
        """One batch through collapse + residual replay.

        Returns the original batch positions of the misses, ascending.
        """
        r_lines, r_sets, rank, miss_positions = _collapse_batch(
            lines, self._set_mask, self.config.n_sets)
        n_rounds = int(rank.max()) + 1
        if r_lines.size < _RESIDUAL_LOOP_WIDTH * n_rounds:
            hits_res = self._residual_loop(r_lines, r_sets, policy,
                                           track=track,
                                           count_evictions=count_evictions)
            return miss_positions(hits_res)
        round_order, offsets = _round_schedule(rank)
        if policy == "lru":
            hits_res = self._vec_lru_fifo(r_lines, r_sets, round_order,
                                          offsets, refresh=True, track=track,
                                          count_evictions=count_evictions)
        elif policy == "fifo":
            hits_res = self._vec_lru_fifo(r_lines, r_sets, round_order,
                                          offsets, refresh=False, track=track,
                                          count_evictions=count_evictions)
        elif policy == "random":
            hits_res = self._vec_random(r_lines, r_sets, round_order, offsets,
                                        track=track,
                                        count_evictions=count_evictions)
        else:
            hits_res = self._vec_plru(r_lines, r_sets, round_order, offsets,
                                      track=track,
                                      count_evictions=count_evictions)
        return miss_positions(hits_res)

    def _residual_loop(self, r_lines: np.ndarray, r_sets: np.ndarray,
                       policy: str, track: bool,
                       count_evictions: bool) -> np.ndarray:
        """Element-wise replay of a deeply-skewed residual.

        Sorted-by-set residual order preserves each set's access order,
        and sets are independent, so replaying in this order is exact.
        Touched rows are unpacked from the tag matrix into Python lists
        once, mutated in place, and written back at the end — the same
        transitions as the scalar oracle, minus the per-access numpy
        overhead the round replay would pay on narrow rounds.
        """
        ways = self.config.ways
        tags = self._tags
        stats = self.stats
        hits: list = []
        ap = hits.append
        state: dict = {}
        get = state.get
        if policy in ("lru", "fifo"):
            # rows stay ways-wide with the -1 padding at the tail: a miss
            # inserts at the front and pops the tail, which is the padded
            # slot when one existed (a fill) and the true victim otherwise
            refresh = policy == "lru"
            for ln, s in zip(r_lines.tolist(), r_sets.tolist()):
                row = get(s)
                if row is None:
                    row = state[s] = tags[s].tolist()
                if ln in row:  # -1 padding never matches a real line
                    ap(True)
                    if refresh and row[0] != ln:
                        row.remove(ln)
                        row.insert(0, ln)
                else:
                    ap(False)
                    row.insert(0, ln)
                    victim = row.pop()
                    if victim >= 0:
                        if count_evictions:
                            stats.evictions += 1
                        if track:
                            self.last_evicted.append(victim)
        elif policy == "random":
            seed = self._seed
            seq = self._evict_seq
            for ln, s in zip(r_lines.tolist(), r_sets.tolist()):
                row = get(s)
                if row is None:
                    row = state[s] = tags[s].tolist()
                if ln in row:
                    ap(True)
                else:
                    ap(False)
                    if row[-1] < 0:  # padding left: fill the first slot
                        row[row.index(-1)] = ln
                    else:
                        v = _victim_way(seed, s, int(seq[s]), ways)
                        seq[s] += 1
                        if count_evictions:
                            stats.evictions += 1
                        if track:
                            self.last_evicted.append(row[v])
                        row[v] = ln
        else:  # plru: way positions are fixed, -1 may sit mid-row
            trees = self._tree_v
            levels = ways.bit_length() - 1
            tstate: dict = {}
            for ln, s in zip(r_lines.tolist(), r_sets.tolist()):
                row = get(s)
                if row is None:
                    row = state[s] = tags[s].tolist()
                    tstate[s] = int(trees[s])
                tree = tstate[s]
                try:
                    way = row.index(ln)
                    ap(True)
                except ValueError:
                    ap(False)
                    node = 0
                    way = 0
                    for _ in range(levels):
                        bit = (tree >> node) & 1
                        way = (way << 1) | bit
                        node = 2 * node + 1 + bit
                    old = row[way]
                    if old >= 0:
                        if count_evictions:
                            stats.evictions += 1
                        if track:
                            self.last_evicted.append(old)
                    row[way] = ln
                node = 0
                for lvl in range(levels - 1, -1, -1):
                    bit = (way >> lvl) & 1
                    if bit:
                        tree &= ~(1 << node)
                    else:
                        tree |= 1 << node
                    node = 2 * node + 1 + bit
                tstate[s] = tree
            for s, tree in tstate.items():
                trees[s] = tree
        for s, row in state.items():  # rows are ways-wide in every branch
            tags[s] = row
        return np.asarray(hits, dtype=bool)

    def _vec_lru_fifo(self, lines: np.ndarray, sets: np.ndarray,
                      round_order: np.ndarray, offsets: np.ndarray,
                      refresh: bool, track: bool,
                      count_evictions: bool) -> np.ndarray:
        """LRU (``refresh=True``) / FIFO rounds over the tag matrix.

        A row is recency-ordered MRU-first with ``-1`` padding at the
        tail; a miss shifts the whole row right and inserts at the
        front, an LRU hit rotates the prefix up to the hit position.
        """
        ways = self.config.ways
        tags = self._tags
        # gather into round order once; rounds then work on slice views
        s_all = sets[round_order]
        ln_all = lines[round_order]
        hits_ro = np.empty(lines.size, dtype=bool)
        col = np.arange(ways, dtype=np.int64)
        for r in range(offsets.size - 1):
            a, b = offsets[r], offsets[r + 1]
            s = s_all[a:b]
            ln = ln_all[a:b]
            rows = tags[s]
            eq = rows == ln[:, None]
            hit = eq.any(axis=1)
            hits_ro[a:b] = hit
            shifted = np.empty_like(rows)
            shifted[:, 0] = ln
            shifted[:, 1:] = rows[:, :-1]
            if refresh:
                pos = np.where(hit, eq.argmax(axis=1), ways - 1)
                new = np.where(col[None, :] > pos[:, None], rows, shifted)
            else:
                new = np.where(hit[:, None], rows, shifted)
            tags[s] = new
            if count_evictions or track:
                victims = rows[~hit, ways - 1]
                victims = victims[victims >= 0]
                if count_evictions:
                    self.stats.evictions += int(victims.size)
                if track and victims.size:
                    self.last_evicted.extend(victims.tolist())
        hits = np.empty(lines.size, dtype=bool)
        hits[round_order] = hits_ro
        return hits

    def _vec_random(self, lines: np.ndarray, sets: np.ndarray,
                    round_order: np.ndarray, offsets: np.ndarray, track: bool,
                    count_evictions: bool) -> np.ndarray:
        """Random-replacement rounds: appends fill the first empty slot;
        full-set victims come from the counter-based hash."""
        ways = self.config.ways
        tags = self._tags
        s_all = sets[round_order]
        ln_all = lines[round_order]
        hits_ro = np.empty(lines.size, dtype=bool)
        for r in range(offsets.size - 1):
            a, b = offsets[r], offsets[r + 1]
            s = s_all[a:b]
            ln = ln_all[a:b]
            rows = tags[s]
            hit = (rows == ln[:, None]).any(axis=1)
            hits_ro[a:b] = hit
            miss = ~hit
            if not miss.any():
                continue
            ms = s[miss]
            mln = ln[miss]
            cnt = (rows[miss] >= 0).sum(axis=1)
            space = cnt < ways
            if space.any():
                tags[ms[space], cnt[space]] = mln[space]
            full = ~space
            if full.any():
                fs = ms[full]
                seq = self._evict_seq[fs]
                vic = _victim_way_arr(self._seed, fs, seq, ways)
                self._evict_seq[fs] = seq + 1
                if count_evictions:
                    self.stats.evictions += int(fs.size)
                if track:
                    self.last_evicted.extend(tags[fs, vic].tolist())
                tags[fs, vic] = mln[full]
        hits = np.empty(lines.size, dtype=bool)
        hits[round_order] = hits_ro
        return hits

    def _vec_plru(self, lines: np.ndarray, sets: np.ndarray,
                  round_order: np.ndarray, offsets: np.ndarray, track: bool,
                  count_evictions: bool) -> np.ndarray:
        """Tree-PLRU rounds: vectorized victim walk + steering-bit update."""
        ways = self.config.ways
        levels = ways.bit_length() - 1
        tags = self._tags
        trees = self._tree_v
        s_all = sets[round_order]
        ln_all = lines[round_order]
        hits_ro = np.empty(lines.size, dtype=bool)
        one = np.int64(1)
        for r in range(offsets.size - 1):
            a, b = offsets[r], offsets[r + 1]
            s = s_all[a:b]
            ln = ln_all[a:b]
            rows = tags[s]
            eq = rows == ln[:, None]
            hit = eq.any(axis=1)
            hits_ro[a:b] = hit
            way = eq.argmax(axis=1).astype(np.int64)
            tree = trees[s]
            miss = ~hit
            if miss.any():
                # walk the steering bits down to each miss's victim leaf
                tm = tree[miss]
                node = np.zeros(tm.size, dtype=np.int64)
                w = np.zeros(tm.size, dtype=np.int64)
                for _ in range(levels):
                    bit = (tm >> node) & one
                    w = (w << one) | bit
                    node = 2 * node + 1 + bit
                ms = s[miss]
                old = tags[ms, w]
                resident = old >= 0
                if count_evictions:
                    self.stats.evictions += int(resident.sum())
                if track and resident.any():
                    self.last_evicted.extend(old[resident].tolist())
                tags[ms, w] = ln[miss]
                way[miss] = w
            # point every touched path's bits *away* from the used way
            node = np.zeros(s.size, dtype=np.int64)
            for lvl in range(levels - 1, -1, -1):
                bit = (way >> np.int64(lvl)) & one
                m = one << node
                tree = np.where(bit == 1, tree & ~m, tree | m)
                node = 2 * node + 1 + bit
            trees[s] = tree
        hits = np.empty(lines.size, dtype=bool)
        hits[round_order] = hits_ro
        return hits

    # -- prefetch support ---------------------------------------------------------

    def install_lines(self, lines) -> int:
        """Insert lines without counting accesses (prefetch fills).

        Lines already resident are refreshed to MRU under LRU (matching
        hardware prefetchers that update replacement state); evictions
        follow the normal policy but are never recorded in counters or
        ``last_evicted``.  Returns how many lines were newly installed
        (i.e. were not already resident).
        """
        lines = np.asarray(lines, dtype=np.int64)
        if lines.size == 0:
            return 0
        cfg = self.config
        installed = 0
        if cfg.replacement == "direct":
            sets = lines & self._set_mask
            installed = int((self._dm_state[sets] != lines).sum())
            self._dm_state[sets] = lines
            return installed
        if self.backend == "vector":
            # random installs skip the victim-hash draw: front insertion
            # with no hit refresh is exactly the FIFO transition
            policy = ("fifo" if cfg.replacement == "random"
                      else cfg.replacement)
            missed_idx = self._vec_replay(lines, policy, track=False,
                                          count_evictions=False)
            return int(missed_idx.size)
        if cfg.replacement == "plru":
            before = (self.stats.accesses, self.stats.hits,
                      self.stats.misses, self.stats.evictions)
            track = self.track_evictions
            self.track_evictions = False
            try:
                missed = self._access_plru(lines)
            finally:
                self.track_evictions = track
            (self.stats.accesses, self.stats.hits,
             self.stats.misses, self.stats.evictions) = before
            return len(missed)
        mask = self._set_mask
        ways = cfg.ways
        sets = self._sets
        for ln in lines.tolist():
            s = sets[ln & mask]
            if ln in s:
                if cfg.replacement == "lru" and s[0] != ln:
                    s.remove(ln)
                    s.insert(0, ln)
            else:
                installed += 1
                s.insert(0, ln)
                if len(s) > ways:
                    s.pop()
        return installed

    def invalidate(self, lines) -> int:
        """Drop lines from the cache if present (inclusion back-invalidate).

        Returns how many were actually resident.  No counters change: an
        invalidation is not a demand access.
        """
        lines = np.asarray(lines, dtype=np.int64)
        cfg = self.config
        dropped = 0
        if cfg.replacement == "direct":
            sets = lines & self._set_mask
            match = self._dm_state[sets] == lines
            dropped = int(match.sum())
            self._dm_state[sets[match]] = -1
            return dropped
        if self.backend == "vector":
            mask = self._set_mask
            tags = self._tags
            plru = cfg.replacement == "plru"
            for ln in lines.tolist():
                row = tags[ln & mask]
                pos = np.flatnonzero(row == ln)
                if not pos.size:
                    continue
                dropped += 1
                p = int(pos[0])
                if plru:
                    row[p] = -1  # way positions are fixed under PLRU
                else:
                    # recency rows compact left, keeping -1 at the tail
                    row[p:-1] = row[p + 1:]
                    row[-1] = -1
            return dropped
        if cfg.replacement == "plru":
            for ln in lines.tolist():
                resident = self._lines[ln & self._set_mask]
                try:
                    resident[resident.index(ln)] = -1
                    dropped += 1
                except ValueError:
                    pass
            return dropped
        for ln in lines.tolist():
            s = self._sets[ln & self._set_mask]
            if ln in s:
                s.remove(ln)
                dropped += 1
        return dropped

    # -- introspection -----------------------------------------------------------

    def resident_lines(self) -> set:
        """Set of line ids currently resident (for tests)."""
        cfg = self.config
        if cfg.replacement == "direct":
            return {int(x) for x in self._dm_state if x >= 0}
        if self.backend == "vector":
            return {int(x) for x in self._tags.ravel() if x >= 0}
        if cfg.replacement == "plru":
            return {ln for s in self._lines for ln in s if ln >= 0}
        return {ln for s in self._sets for ln in s}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"Cache({c.name}, {c.capacity_bytes}B, {c.ways}-way, "
            f"{c.replacement}, sets={c.n_sets}, backend={self.backend})"
        )
