"""Set-associative cache simulation.

The substitute for the paper's hardware: instead of reading PAPI
counters off Ivy Bridge / MIC silicon, we drive software caches with the
exact line-address streams the kernels generate and count hits/misses
directly.  Caches are set-associative with configurable line size,
associativity, and replacement policy (LRU, FIFO, tree-PLRU, random, and
a fully-vectorized direct-mapped fast path).

Only reads are simulated (the studied kernels are read-dominated:
stencil gathers and ray sampling; their writes are streaming stores of
output pencils/pixels which the paper's counters — L3 total cache
accesses, L2 data *read* miss — do not emphasize).  Write traffic can be
fed through the same ``access_lines`` if desired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.bits import ilog2, is_power_of_two

__all__ = ["CacheConfig", "CacheStats", "Cache", "REPLACEMENT_POLICIES"]

REPLACEMENT_POLICIES = ("lru", "fifo", "plru", "random", "direct")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache.

    Parameters
    ----------
    name : str
        Level label ("L1", "L2", "L3").
    capacity_bytes : int
        Total data capacity.  Must be ``n_sets * ways * line_bytes`` with
        ``n_sets`` a power of two.
    line_bytes : int
        Cache-line size (64 on both of the paper's platforms).
    ways : int
        Associativity.  ``replacement="direct"`` forces ways == 1.
    replacement : str
        One of ``lru`` (default), ``fifo``, ``plru``, ``random``,
        ``direct`` (direct-mapped, vectorized fast path).
    """

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    ways: int = 8
    replacement: str = "lru"

    def __post_init__(self):
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement {self.replacement!r}; "
                f"choose from {REPLACEMENT_POLICIES}"
            )
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.replacement == "direct" and self.ways != 1:
            raise ValueError("direct-mapped caches must have ways == 1")
        if self.ways <= 0:
            raise ValueError(f"ways must be positive, got {self.ways}")
        if self.replacement == "plru" and not is_power_of_two(self.ways):
            raise ValueError("tree-PLRU requires power-of-two associativity")
        n_sets, rem = divmod(self.capacity_bytes, self.ways * self.line_bytes)
        if rem or n_sets <= 0 or not is_power_of_two(n_sets):
            raise ValueError(
                f"capacity {self.capacity_bytes} is not line*ways*2^k "
                f"(line={self.line_bytes}, ways={self.ways})"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.ways * self.line_bytes)

    @property
    def n_lines(self) -> int:
        """Total line slots."""
        return self.n_sets * self.ways

    def scaled(self, factor: int) -> "CacheConfig":
        """Capacity divided by ``factor`` (rounded down to a valid geometry).

        Associativity and line size are preserved; the set count shrinks
        to the nearest power of two, with a floor of one set.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        target_sets = max(1, self.n_sets // factor)
        n_sets = 1 << ilog2(target_sets) if is_power_of_two(target_sets) else (
            1 << (target_sets.bit_length() - 1)
        )
        return CacheConfig(
            name=self.name,
            capacity_bytes=n_sets * self.ways * self.line_bytes,
            line_bytes=self.line_bytes,
            ways=self.ways,
            replacement=self.replacement,
        )


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (1.0 for an untouched cache)."""
        return self.hits / self.accesses if self.accesses else 1.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum (for aggregating per-core instances)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
        )


class Cache:
    """One simulated cache; feed it line ids, get back the missed ones.

    Line ids are byte addresses divided by ``line_bytes`` (the division
    happens upstream, once, vectorized).  State persists across calls so
    a cache can be shared between interleaved threads.
    """

    def __init__(self, config: CacheConfig, seed: int = 0):
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.n_sets - 1
        self._rng = np.random.default_rng(seed)
        #: lines evicted by the most recent access_lines call (filled only
        #: when track_evictions is on — the inclusive-hierarchy hook)
        self.track_evictions = False
        self.last_evicted: list = []
        self.reset()

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        cfg = self.config
        self.stats = CacheStats()
        self.last_evicted = []
        if cfg.replacement == "direct":
            self._dm_state = np.full(cfg.n_sets, -1, dtype=np.int64)
        elif cfg.replacement == "plru":
            # way-resident line per set, plus the PLRU tree bits per set
            self._lines = [[-1] * cfg.ways for _ in range(cfg.n_sets)]
            self._tree = [0] * cfg.n_sets
        else:
            # lru / fifo / random: per-set list of resident line ids.
            # For LRU the list is MRU-first; for FIFO it is insertion order
            # newest-first; for random order is irrelevant.
            self._sets: List[list] = [[] for _ in range(cfg.n_sets)]

    # -- main entry ------------------------------------------------------------

    def access_lines(self, lines) -> np.ndarray:
        """Access ``lines`` in order; return the missed lines, in order.

        Misses insert the line (fill on miss, i.e. allocate-on-read).
        """
        lines = np.asarray(lines, dtype=np.int64)
        if self.track_evictions:
            self.last_evicted = []
        if lines.size == 0:
            return lines
        policy = self.config.replacement
        if policy == "direct":
            return self._access_direct(lines)
        if policy == "lru":
            missed = self._access_lru(lines)
        elif policy == "fifo":
            missed = self._access_fifo(lines)
        elif policy == "random":
            missed = self._access_random(lines)
        else:
            missed = self._access_plru(lines)
        self.stats.accesses += lines.size
        self.stats.misses += len(missed)
        self.stats.hits += lines.size - len(missed)
        return np.asarray(missed, dtype=np.int64)

    # -- policies ---------------------------------------------------------------

    def _access_lru(self, lines: np.ndarray) -> list:
        sets = self._sets
        mask = self._set_mask
        ways = self.config.ways
        track = self.track_evictions
        missed: list = []
        ap = missed.append
        for ln in lines.tolist():
            s = sets[ln & mask]
            if ln in s:
                if s[0] != ln:
                    s.remove(ln)
                    s.insert(0, ln)
            else:
                ap(ln)
                s.insert(0, ln)
                if len(s) > ways:
                    victim = s.pop()
                    if track:
                        self.last_evicted.append(victim)
        return missed

    def _access_fifo(self, lines: np.ndarray) -> list:
        sets = self._sets
        mask = self._set_mask
        ways = self.config.ways
        missed: list = []
        ap = missed.append
        for ln in lines.tolist():
            s = sets[ln & mask]
            if ln not in s:
                ap(ln)
                s.insert(0, ln)
                if len(s) > ways:
                    victim = s.pop()
                    if self.track_evictions:
                        self.last_evicted.append(victim)
        return missed

    def _access_random(self, lines: np.ndarray) -> list:
        sets = self._sets
        mask = self._set_mask
        ways = self.config.ways
        missed: list = []
        ap = missed.append
        # pre-draw victims in bulk; refill lazily if exhausted
        victims = self._rng.integers(0, ways, size=max(256, lines.size)).tolist()
        vpos = 0
        for ln in lines.tolist():
            s = sets[ln & mask]
            if ln not in s:
                ap(ln)
                if len(s) < ways:
                    s.append(ln)
                else:
                    if vpos >= len(victims):
                        victims = self._rng.integers(0, ways, size=256).tolist()
                        vpos = 0
                    if self.track_evictions:
                        self.last_evicted.append(s[victims[vpos]])
                    s[victims[vpos]] = ln
                    vpos += 1
        return missed

    def _access_plru(self, lines: np.ndarray) -> list:
        """Tree-PLRU: one bit per internal node steers victim selection."""
        ways = self.config.ways
        levels = ways.bit_length() - 1  # ways is a power of two
        mask = self._set_mask
        lines_tab = self._lines
        tree_tab = self._tree
        missed: list = []
        ap = missed.append
        for ln in lines.tolist():
            si = ln & mask
            resident = lines_tab[si]
            tree = tree_tab[si]
            try:
                way = resident.index(ln)
                hit = True
            except ValueError:
                hit = False
            if not hit:
                ap(ln)
                # walk the tree following the PLRU bits to the victim leaf
                node = 0
                way = 0
                for _ in range(levels):
                    bit = (tree >> node) & 1
                    way = (way << 1) | bit
                    node = 2 * node + 1 + bit
                if self.track_evictions and resident[way] >= 0:
                    self.last_evicted.append(resident[way])
                resident[way] = ln
            # update tree bits to point *away* from this way on the path
            node = 0
            for lvl in range(levels - 1, -1, -1):
                bit = (way >> lvl) & 1
                if bit:
                    tree &= ~(1 << node)
                else:
                    tree |= 1 << node
                node = 2 * node + 1 + bit
            tree_tab[si] = tree
        return missed

    def _access_direct(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized direct-mapped path (no Python per-access loop).

        Exact: a direct-mapped hit happens iff the previous access to the
        same set (within this batch, or the persisted state for the first
        such access) was the same line.
        """
        state = self._dm_state
        sets = lines & self._set_mask
        order = np.argsort(sets, kind="stable")
        s_lines = lines[order]
        s_sets = sets[order]
        hit_sorted = np.empty(lines.size, dtype=bool)
        same_set = np.empty(lines.size, dtype=bool)
        same_set[0] = False
        same_set[1:] = s_sets[1:] == s_sets[:-1]
        prev_line = np.empty_like(s_lines)
        prev_line[0] = -1
        prev_line[1:] = s_lines[:-1]
        # first access per set in the batch compares against persisted state
        first_of_set = ~same_set
        hit_sorted = np.where(first_of_set, state[s_sets] == s_lines,
                              prev_line == s_lines)
        if self.track_evictions:
            # any resident line replaced during the batch was evicted:
            # walk the per-set subsequences (small python loop over misses)
            prev_state = state.copy()
            for s_idx, ln, hit in zip(s_sets.tolist(), s_lines.tolist(),
                                      hit_sorted.tolist()):
                if not hit:
                    old = prev_state[s_idx]
                    if old >= 0 and old != ln:
                        self.last_evicted.append(int(old))
                    prev_state[s_idx] = ln
        # persist the last line per set
        last_of_set = np.empty(lines.size, dtype=bool)
        last_of_set[:-1] = s_sets[:-1] != s_sets[1:]
        last_of_set[-1] = True
        state[s_sets[last_of_set]] = s_lines[last_of_set]
        hits = np.empty(lines.size, dtype=bool)
        hits[order] = hit_sorted
        self.stats.accesses += lines.size
        n_hits = int(hits.sum())
        self.stats.hits += n_hits
        self.stats.misses += lines.size - n_hits
        return lines[~hits]

    # -- prefetch support ---------------------------------------------------------

    def install_lines(self, lines) -> int:
        """Insert lines without counting accesses (prefetch fills).

        Lines already resident are refreshed to MRU under LRU (matching
        hardware prefetchers that update replacement state); evictions
        follow the normal policy.  Returns how many lines were newly
        installed (i.e. were not already resident).
        """
        lines = np.asarray(lines, dtype=np.int64)
        if lines.size == 0:
            return 0
        cfg = self.config
        installed = 0
        if cfg.replacement == "direct":
            sets = lines & self._set_mask
            installed = int((self._dm_state[sets] != lines).sum())
            self._dm_state[sets] = lines
            return installed
        if cfg.replacement == "plru":
            before = self.stats.accesses, self.stats.hits, self.stats.misses
            missed = self._access_plru(lines)
            self.stats.accesses, self.stats.hits, self.stats.misses = before
            return len(missed)
        mask = self._set_mask
        ways = cfg.ways
        sets = self._sets
        for ln in lines.tolist():
            s = sets[ln & mask]
            if ln in s:
                if cfg.replacement == "lru" and s[0] != ln:
                    s.remove(ln)
                    s.insert(0, ln)
            else:
                installed += 1
                s.insert(0, ln)
                if len(s) > ways:
                    s.pop()
        return installed

    def invalidate(self, lines) -> int:
        """Drop lines from the cache if present (inclusion back-invalidate).

        Returns how many were actually resident.  No counters change: an
        invalidation is not a demand access.
        """
        lines = np.asarray(lines, dtype=np.int64)
        cfg = self.config
        dropped = 0
        if cfg.replacement == "direct":
            sets = lines & self._set_mask
            match = self._dm_state[sets] == lines
            dropped = int(match.sum())
            self._dm_state[sets[match]] = -1
            return dropped
        if cfg.replacement == "plru":
            for ln in lines.tolist():
                resident = self._lines[ln & self._set_mask]
                try:
                    resident[resident.index(ln)] = -1
                    dropped += 1
                except ValueError:
                    pass
            return dropped
        for ln in lines.tolist():
            s = self._sets[ln & self._set_mask]
            if ln in s:
                s.remove(ln)
                dropped += 1
        return dropped

    # -- introspection -----------------------------------------------------------

    def resident_lines(self) -> set:
        """Set of line ids currently resident (for tests)."""
        cfg = self.config
        if cfg.replacement == "direct":
            return {int(x) for x in self._dm_state if x >= 0}
        if cfg.replacement == "plru":
            return {ln for s in self._lines for ln in s if ln >= 0}
        return {ln for s in self._sets for ln in s}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"Cache({c.name}, {c.capacity_bytes}B, {c.ways}-way, "
            f"{c.replacement}, sets={c.n_sets})"
        )
