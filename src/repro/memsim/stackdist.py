"""Single-pass stack-distance (Mattson) replay backend.

The replay backends in :mod:`repro.memsim.cache` re-walk the whole
address stream once per cache geometry.  For a *fully-associative LRU*
cache that is wasted work: an access hits a capacity-``C`` cache iff
its stack distance — the number of distinct lines touched since the
previous access to the same line — is ``< C``, so one pass computing
the stack-distance histogram prices **every** capacity at once
(Mattson et al., 1970).  This module is that pass, fully vectorized,
plus the plumbing that lets sweeps reuse a histogram across geometries
without touching the trace again.

Algorithm
---------
Per-access stack distances fall out of two classical reductions, both
of which vectorize cleanly:

1. With ``prev[t]`` the previous position of the line accessed at
   ``t``, the window ``(prev[t], t)`` holds ``t - prev[t] - 1``
   accesses, of which the *repeats* are exactly the accesses ``j`` with
   ``prev[j] > prev[t]`` (a repeat's own previous occurrence lies
   inside the window, and ``j > prev[j] > prev[t]`` makes ``j`` land in
   the window automatically).  Hence::

       d[t] = (t - prev[t] - 1) - #{j < t : prev[j] > prev[t]}

2. The correction term is a count-of-earlier-larger over the
   (distinct) ``prev`` values in time order — inversion counting,
   done here by a bottom-up merge accumulation: ``log2(n)`` rounds,
   each one a batched stable row-sort over all current blocks (two
   sorted runs per row, which the stable sort merges in linear time)
   plus O(n) rank arithmetic.  No per-access Python anywhere.

Validity domain
---------------
Histogram pricing is exact for a **single fully-associative LRU cache
fed the raw stream** — and for nothing else.  In particular it does
*not* extend to multi-level hierarchies the way our
:class:`~repro.memsim.hierarchy.Machine` wires them (each outer level
sees only the inner level's misses): the filtered stream scrambles
recency.  Counterexample: stream ``x y x z w x`` through L1=2,
L2=3 lines — the final ``x`` has global stack distance 2 (< 3, so
histogram pricing predicts an L2 hit) but L2, which saw only
``x y z w``, evicted ``x`` on ``w`` and actually misses.
:func:`stack_ineligibility` encodes the exact domain; the engine falls
back to the vectorized replayer outside it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..resilience import artifacts as _artifacts
from .cache import CacheConfig
from .hierarchy import LevelSpec, PlatformSpec

__all__ = [
    "COLD",
    "StackDistanceHistogram",
    "stack_distances",
    "stack_distance_histogram",
    "per_thread_histograms",
    "stack_ineligibility",
    "fully_associative_spec",
    "HistogramStore",
    "stream_key",
]

#: distance assigned to cold (first-touch) accesses, matching
#: :data:`repro.analysis.reuse.INFINITE_DISTANCE`
COLD = -1

#: bumped whenever the on-disk histogram payload layout changes
_HISTOGRAM_SCHEMA_VERSION = 1

#: artifact-kind tag for sidecar integrity records
_ARTIFACT_KIND = "stack-histogram"


def _as_line_array(lines) -> np.ndarray:
    """Normalize a stream to a flat int64 ndarray without extra copies.

    Integer ndarrays pass through as (at most) a dtype-cast view chain;
    lists and other iterables are converted once.
    """
    arr = np.asarray(lines)
    if arr.dtype.kind not in "iu":
        if arr.size and not np.issubdtype(arr.dtype, np.number):
            raise TypeError(f"line stream must be integer, got {arr.dtype}")
        arr = arr.astype(np.int64)
    elif arr.dtype != np.int64:
        arr = arr.astype(np.int64)
    return arr.ravel()


def _count_earlier_greater(values: np.ndarray) -> np.ndarray:
    """For each position ``i``: ``#{k < i : values[k] > values[i]}``.

    ``values`` must be pairwise distinct (they are previous-occurrence
    positions here, which are distinct by construction).  Bottom-up
    merge accumulation: at block size ``s``, every element in a right
    half counts the elements of its (earlier-in-time) left half that
    exceed it, read off the element's rank in the merged order.  The
    rows being two sorted runs, the stable row-sort is a linear merge.
    """
    m = values.size
    counts = np.zeros(m, dtype=np.int64)
    if m < 2:
        return counts
    n_pad = 1 << int(m - 1).bit_length()
    vals = np.empty(n_pad, dtype=np.int64)
    vals[:m] = values
    if n_pad > m:
        # ascending pad larger than every real value: sorts to the
        # tail, stays distinct, contributes no cross-block counts
        top = int(values.max()) + 1
        vals[m:] = np.arange(top, top + (n_pad - m), dtype=np.int64)
    src = np.arange(n_pad, dtype=np.int64)
    size = 1
    while size < n_pad:
        width = 2 * size
        rows = vals.reshape(-1, width)
        src_rows = src.reshape(-1, width)
        order = np.argsort(rows, kind="stable", axis=1)
        rank = np.empty_like(order)
        np.put_along_axis(rank, order,
                          np.broadcast_to(np.arange(width), rows.shape),
                          axis=1)
        # a right-half element at column size+j has exactly j smaller
        # right-half siblings (its own run is sorted), so `rank - j` of
        # the `size` left-half elements — all earlier in time — are
        # smaller and the rest are greater
        j = np.arange(size, dtype=np.int64)
        cross = (size - (rank[:, size:] - j)).ravel()
        right_src = src_rows[:, size:].ravel()
        real = right_src < m
        # src is a permutation, so right_src entries are distinct:
        # plain fancy-index accumulation is safe
        counts[right_src[real]] += cross[real]
        vals = np.take_along_axis(rows, order, axis=1).ravel()
        src = np.take_along_axis(src_rows, order, axis=1).ravel()
        size = width
    return counts


def stack_distances(lines) -> np.ndarray:
    """Per-access LRU stack distances; cold accesses get :data:`COLD`.

    The distance of an access is the number of *distinct* lines touched
    since the previous access to the same line — identical semantics to
    :func:`repro.analysis.reuse.reuse_distance_histogram`, computed in
    O(n log n) numpy passes with no per-access Python loop.
    """
    arr = _as_line_array(lines)
    n = arr.size
    dist = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return dist
    # previous-occurrence index per access
    _, inv = np.unique(arr, return_inverse=True)
    order = np.argsort(inv, kind="stable")
    inv_sorted = inv[order]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    same = inv_sorted[1:] == inv_sorted[:-1]
    prev_sorted[1:][same] = order[:-1][same]
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    warm = np.flatnonzero(prev >= 0)
    if warm.size:
        q = prev[warm]
        repeats = _count_earlier_greater(q)
        dist[warm] = warm - q - 1 - repeats
    return dist


@dataclass(frozen=True)
class StackDistanceHistogram:
    """A stream's full stack-distance profile: prices any FA-LRU capacity.

    Attributes
    ----------
    distances : np.ndarray
        Sorted (ascending) distinct finite stack distances.
    counts : np.ndarray
        Access count per entry of ``distances``.
    cold : int
        First-touch accesses (distance ∞).  Also the number of distinct
        lines in the stream — every distinct line is cold exactly once.
    """

    distances: np.ndarray
    counts: np.ndarray
    cold: int

    def __post_init__(self):
        if self.distances.size != self.counts.size:
            raise ValueError("distances/counts length mismatch")
        if self.distances.size and np.any(np.diff(self.distances) <= 0):
            raise ValueError("distances must be sorted strictly ascending")

    @property
    def total(self) -> int:
        """Total accesses in the stream."""
        return int(self.counts.sum()) + self.cold

    @property
    def distinct_lines(self) -> int:
        """Distinct lines touched (== cold accesses)."""
        return self.cold

    def misses(self, capacity_lines: int) -> int:
        """Exact miss count of a fully-associative LRU cache of ``C`` lines."""
        return int(self.miss_counts([capacity_lines])[0])

    def miss_counts(self, capacities: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`misses` over many capacities at once.

        An access misses iff its distance ``>= C`` (cold always misses):
        one cumulative sum plus a sorted lookup per capacity.
        """
        caps = np.asarray(capacities, dtype=np.int64)
        if caps.size and np.any(caps <= 0):
            raise ValueError("capacities must be positive line counts")
        if self.counts.size == 0:  # only cold accesses (or none at all)
            return np.full(caps.shape, self.cold, dtype=np.int64)
        cum = np.cumsum(self.counts)
        finite = int(cum[-1])
        idx = np.searchsorted(self.distances, caps, side="left")
        below = np.where(idx > 0, cum[np.maximum(idx - 1, 0)], 0)
        return finite - below + self.cold

    def hits(self, capacity_lines: int) -> int:
        """Exact hit count at ``capacity_lines``."""
        return self.total - self.misses(capacity_lines)

    def evictions(self, capacity_lines: int) -> int:
        """Demand evictions at ``capacity_lines``.

        Every miss inserts; the first ``min(distinct, C)`` fills land in
        empty ways (while occupancy is below ``C`` nothing has ever been
        evicted, so every resident line stays resident and all misses
        are cold).
        """
        return self.misses(capacity_lines) - min(self.cold, capacity_lines)

    def miss_ratios(self, capacities: Sequence[int]) -> np.ndarray:
        """Miss ratio per capacity (0.0 for an empty stream)."""
        total = self.total
        if total == 0:
            return np.zeros(len(capacities), dtype=np.float64)
        return self.miss_counts(capacities) / float(total)

    def as_dict(self) -> Dict[int, int]:
        """``{distance: count}`` with cold keyed by :data:`COLD` — the
        exact shape :func:`repro.analysis.reuse.reuse_distance_histogram`
        returns."""
        out = {int(d): int(c)
               for d, c in zip(self.distances.tolist(), self.counts.tolist())}
        if self.cold:
            out[COLD] = self.cold
        return out

    @classmethod
    def from_distances(cls, dist: np.ndarray) -> "StackDistanceHistogram":
        """Histogram a per-access distance array (:func:`stack_distances`)."""
        dist = np.asarray(dist, dtype=np.int64)
        cold = int((dist == COLD).sum())
        finite = dist[dist != COLD]
        distances, counts = np.unique(finite, return_counts=True)
        return cls(distances=distances, counts=counts.astype(np.int64),
                   cold=cold)

    @classmethod
    def empty(cls) -> "StackDistanceHistogram":
        """Histogram of an empty stream."""
        return cls(distances=np.empty(0, dtype=np.int64),
                   counts=np.empty(0, dtype=np.int64), cold=0)


def stack_distance_histogram(lines) -> StackDistanceHistogram:
    """One vectorized pass over ``lines`` → the full capacity profile."""
    return StackDistanceHistogram.from_distances(stack_distances(lines))


def per_thread_histograms(lines, thread_ids) -> Dict[int, StackDistanceHistogram]:
    """Distances over the *shared* stream, histogrammed per issuing thread.

    ``lines`` is one cache instance's interleaved access stream and
    ``thread_ids`` names the issuer of each access.  Distances are
    computed once over the shared stream (interleaving is what makes a
    shared cache shared), then split by issuer — so pricing a capacity
    yields exact per-thread hit/miss counts, which the cost model needs
    for per-thread cycle accounting.
    """
    arr = _as_line_array(lines)
    tids = np.asarray(thread_ids, dtype=np.int64).ravel()
    if tids.size != arr.size:
        raise ValueError(
            f"thread_ids length {tids.size} != stream length {arr.size}")
    dist = stack_distances(arr)
    out: Dict[int, StackDistanceHistogram] = {}
    for tid in np.unique(tids).tolist():
        out[int(tid)] = StackDistanceHistogram.from_distances(
            dist[tids == tid])
    return out


# -- engine eligibility ---------------------------------------------------------


def stack_ineligibility(spec: PlatformSpec) -> Optional[str]:
    """Why ``spec`` cannot be priced from stack distances (None = it can).

    The stack backend is exact only for a machine whose every cache
    instance is a single-level fully-associative LRU fed the raw
    stream: multi-level hierarchies filter the stream (see the module
    docstring's counterexample), other policies don't obey stack
    inclusion, set-associativity splits the stream by set, prefetchers
    mutate residency outside the demand stream, and a TLB is an extra
    (set-associative) cache on the side.
    """
    if len(spec.levels) != 1:
        return ("multi-level hierarchy: outer levels see the inner "
                "levels' filtered miss stream, which stack distances "
                "of the raw stream cannot price")
    level = spec.levels[0]
    if level.cache.replacement != "lru":
        return (f"replacement {level.cache.replacement!r} does not obey "
                f"LRU stack inclusion")
    if level.cache.n_sets != 1:
        return (f"{level.cache.n_sets}-set cache is set-associative; "
                f"stack pricing needs a fully-associative geometry")
    if level.prefetch is not None:
        return "prefetcher installs lines outside the demand stream"
    if spec.tlb is not None:
        return "platform models a TLB, which stack pricing does not cover"
    return None


def fully_associative_spec(capacity_lines: int,
                           line_bytes: int = 64,
                           name: Optional[str] = None,
                           level_name: str = "L1",
                           n_cores: int = 1,
                           n_sockets: int = 1,
                           smt: int = 1,
                           scope: str = "core",
                           freq_ghz: float = 1.0,
                           latency_cycles: float = 4.0,
                           mem_latency_cycles: float = 100.0,
                           mem_parallelism: float = 4.0) -> PlatformSpec:
    """A single-level fully-associative LRU platform — the stack backend's
    native geometry, and the natural axis for capacity sweeps.

    Two specs from this helper that differ only in ``capacity_lines``
    are recognized by :func:`repro.experiments.sweep.sweep_cells` as a
    capacity-only sweep and priced from one histogram.
    """
    if capacity_lines <= 0:
        raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
    cache = CacheConfig(
        name=level_name,
        capacity_bytes=capacity_lines * line_bytes,
        line_bytes=line_bytes,
        ways=capacity_lines,
        replacement="lru",
    )
    return PlatformSpec(
        name=name or f"fa-lru-{capacity_lines}",
        n_cores=n_cores,
        n_sockets=n_sockets,
        smt=smt,
        freq_ghz=freq_ghz,
        levels=(LevelSpec(cache=cache, scope=scope,
                          latency_cycles=latency_cycles),),
        mem_latency_cycles=mem_latency_cycles,
        mem_parallelism=mem_parallelism,
        counters={
            f"{level_name}_TCA": (level_name, "accesses"),
            f"{level_name}_TCM": (level_name, "misses"),
        },
    )


# -- durable histogram artifacts ------------------------------------------------


def stream_key(lines: np.ndarray, thread_ids: np.ndarray) -> str:
    """Content key of one instance stream (layout/kernel/order implied).

    Hashes the interleaved line ids plus their per-access issuing
    thread, little-endian int64 — everything the per-thread histograms
    depend on and nothing they don't (capacity, in particular, is *not*
    part of the key: that is the whole point).
    """
    h = hashlib.sha256()
    h.update(b"stackdist-v%d\n" % _HISTOGRAM_SCHEMA_VERSION)
    h.update(np.ascontiguousarray(lines, dtype="<i8").tobytes())
    h.update(b"|")
    h.update(np.ascontiguousarray(thread_ids, dtype="<i8").tobytes())
    return h.hexdigest()


def _dump_histograms(hists: Dict[int, StackDistanceHistogram]) -> bytes:
    """Serialize per-thread histograms: one JSON header line + raw arrays."""
    header = {
        "schema": _HISTOGRAM_SCHEMA_VERSION,
        "threads": [
            {"tid": tid, "cold": h.cold, "n": int(h.distances.size)}
            for tid, h in sorted(hists.items())
        ],
    }
    parts: List[bytes] = [json.dumps(header, sort_keys=True).encode("utf-8"),
                          b"\n"]
    for tid, h in sorted(hists.items()):
        parts.append(np.ascontiguousarray(h.distances, dtype="<i8").tobytes())
        parts.append(np.ascontiguousarray(h.counts, dtype="<i8").tobytes())
    return b"".join(parts)


def _load_histograms(data: bytes) -> Dict[int, StackDistanceHistogram]:
    """Inverse of :func:`_dump_histograms` (raises ValueError on damage)."""
    nl = data.index(b"\n")
    header = json.loads(data[:nl].decode("utf-8"))
    if header.get("schema") != _HISTOGRAM_SCHEMA_VERSION:
        raise ValueError(f"unsupported histogram schema {header.get('schema')!r}")
    out: Dict[int, StackDistanceHistogram] = {}
    pos = nl + 1
    for rec in header["threads"]:
        n = int(rec["n"])
        span = 8 * n
        distances = np.frombuffer(data, dtype="<i8", count=n,
                                  offset=pos).astype(np.int64)
        counts = np.frombuffer(data, dtype="<i8", count=n,
                               offset=pos + span).astype(np.int64)
        pos += 2 * span
        out[int(rec["tid"])] = StackDistanceHistogram(
            distances=distances, counts=counts, cold=int(rec["cold"]))
    if pos != len(data):
        raise ValueError("trailing bytes after histogram payload")
    return out


class HistogramStore:
    """Cache of per-thread histograms keyed by stream content.

    Always memoizes in process; with a ``directory`` it additionally
    persists each histogram bundle as a durable artifact
    (:func:`repro.resilience.artifacts.write_artifact`: atomic replace
    plus SHA-256 sidecar), so a later sweep — or another process —
    re-prices new geometries without ever touching the trace again.  A
    corrupt on-disk bundle is quarantined by the artifact layer and
    transparently recomputed.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = os.fspath(directory) if directory is not None else None
        self._memory: Dict[str, Dict[int, StackDistanceHistogram]] = {}
        self.hits = 0
        self.misses = 0

    def _path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"stackhist-{key}.bin")

    def get_or_compute(
        self, key: str,
        compute: Callable[[], Dict[int, StackDistanceHistogram]],
    ) -> Dict[int, StackDistanceHistogram]:
        """Fetch the bundle for ``key``, computing and persisting on miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        if self.directory is not None:
            path = self._path_for(key)
            if os.path.exists(path):
                try:
                    hists = _load_histograms(
                        _artifacts.read_artifact(path, require_sidecar=True))
                except (_artifacts.ArtifactIntegrityError, ValueError,
                        KeyError, OSError):
                    pass  # quarantined/damaged: recompute below
                else:
                    self._memory[key] = hists
                    self.hits += 1
                    return hists
        self.misses += 1
        hists = compute()
        self._memory[key] = hists
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            _artifacts.write_artifact(
                self._path_for(key), _dump_histograms(hists),
                kind=_ARTIFACT_KIND,
                schema_version=_HISTOGRAM_SCHEMA_VERSION)
        return hists
