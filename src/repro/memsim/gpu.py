"""GPU warp-coalescing model (the Bethel 2012 mechanism).

Section III-A recounts that on a GPU, assigning *depth* rows to threads
doubled the bilateral filter's performance because warps then issued
**coalesced** accesses: the 32 lanes of a warp executing in lockstep hit
consecutive addresses, which the memory system serves as one or two
128-byte transactions instead of 32.  This module models exactly that
metric — transactions per warp instruction — so the layout study extends
to the GPU execution style the paper's keyword list ("GPU algorithms")
promises:

* :func:`warp_transactions` — unique aligned segments per lockstep
  access, the hardware coalescer's arithmetic;
* :func:`bilateral_warp_stats` — the filter with a warp of 32 adjacent
  pencils marching in lockstep (the paper's width- vs depth-row choice);
* :func:`volrend_warp_stats` — the raycaster with a warp of 32 adjacent
  pixels marching their rays in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.grid import Grid

__all__ = [
    "CoalescingStats",
    "warp_transactions",
    "bilateral_warp_stats",
    "volrend_warp_stats",
]

WARP = 32


@dataclass(frozen=True)
class CoalescingStats:
    """Coalescing summary for a lockstep access sequence.

    Attributes
    ----------
    instructions : int
        Warp-wide load instructions issued.
    transactions : int
        Memory transactions the coalescer generated.
    ideal_transactions : int
        The minimum possible (each warp's active lanes packed densely).
    efficiency : float
        ideal / actual (1.0 = perfectly coalesced).
    """

    instructions: int
    transactions: int
    ideal_transactions: int

    @property
    def efficiency(self) -> float:
        if self.transactions == 0:
            return 1.0
        return self.ideal_transactions / self.transactions

    @property
    def transactions_per_instruction(self) -> float:
        """Average transactions per warp load (1.0 is the dream)."""
        if self.instructions == 0:
            return 0.0
        return self.transactions / self.instructions


def warp_transactions(byte_addresses: np.ndarray,
                      active: Optional[np.ndarray] = None,
                      segment_bytes: int = 128,
                      itemsize: int = 4) -> CoalescingStats:
    """Coalesce a (instructions, warp_size) matrix of lane addresses.

    Each row is one lockstep load; its transactions are the distinct
    ``segment_bytes``-aligned segments the active lanes touch.  ``active``
    masks divergent (inactive) lanes.
    """
    addr = np.asarray(byte_addresses, dtype=np.int64)
    if addr.ndim != 2:
        raise ValueError("byte_addresses must be (instructions, warp_size)")
    if active is None:
        active = np.ones(addr.shape, dtype=bool)
    active = np.asarray(active, dtype=bool)
    if active.shape != addr.shape:
        raise ValueError("active mask shape must match addresses")
    segments = addr // segment_bytes
    transactions = 0
    ideal = 0
    instructions = 0
    lanes_per_segment = segment_bytes // itemsize
    for row in range(addr.shape[0]):
        lanes = segments[row][active[row]]
        if lanes.size == 0:
            continue
        instructions += 1
        transactions += int(np.unique(lanes).size)
        ideal += -(-int(lanes.size) // lanes_per_segment)
    return CoalescingStats(
        instructions=instructions,
        transactions=transactions,
        ideal_transactions=ideal,
    )


def bilateral_warp_stats(grid: Grid, pencil_axis: int, radius: int = 2,
                         base_fixed: Tuple[int, int] = (0, 0),
                         segment_bytes: int = 128) -> CoalescingStats:
    """Warp coalescing of the bilateral filter on a GPU-style mapping.

    The warp's 32 lanes handle 32 *adjacent pencils* along ``pencil_axis``
    (adjacent in the lower-numbered fixed axis, matching a thread-block
    mapping), marching the pencil and the stencil in lockstep: one warp
    load per (voxel step, stencil tap).  Interior region only, so every
    lane stays active.
    """
    shape = grid.shape
    other = [a for a in range(3) if a != pencil_axis]
    lo_axis, hi_axis = other
    if shape[lo_axis] < WARP + 2 * radius:
        raise ValueError(
            f"axis {lo_axis} extent {shape[lo_axis]} too small for a "
            f"32-lane warp with radius {radius}")
    lane = np.arange(WARP, dtype=np.int64)
    span = np.arange(-radius, radius + 1, dtype=np.int64)
    dz, dy, dx = np.meshgrid(span, span, span, indexing="ij")
    taps = np.stack([dx.ravel(), dy.ravel(), dz.ravel()], axis=1)

    n_steps = shape[pencil_axis] - 2 * radius
    rows = []
    base = [0, 0, 0]
    base[lo_axis] = radius + base_fixed[0]
    base[hi_axis] = radius + base_fixed[1]
    for step in range(radius, radius + n_steps):
        coords = np.zeros((WARP, 3), dtype=np.int64)
        coords[:, pencil_axis] = step
        coords[:, lo_axis] = base[lo_axis] + lane
        coords[:, hi_axis] = base[hi_axis]
        for tap in taps:
            i = coords[:, 0] + tap[0]
            j = coords[:, 1] + tap[1]
            k = coords[:, 2] + tap[2]
            rows.append(grid.offsets(i, j, k) * grid.itemsize)
    return warp_transactions(np.stack(rows), segment_bytes=segment_bytes,
                             itemsize=grid.itemsize)


def volrend_warp_stats(grid: Grid, camera, tile_origin: Tuple[int, int],
                       step: float = 1.0,
                       segment_bytes: int = 128) -> CoalescingStats:
    """Warp coalescing of the raycaster: 32 adjacent pixels in lockstep.

    Lanes are the 32 pixels of one image-row segment starting at
    ``tile_origin``; each instruction is the lanes' sample loads at one
    ray step (nearest-neighbour reconstruction).  Lanes whose rays have
    exited the volume go inactive (divergence), as on real hardware.
    """
    from ..kernels.camera import generate_rays
    from ..kernels.volrend import ray_box_intersect

    px = np.arange(tile_origin[0], tile_origin[0] + WARP, dtype=np.int64)
    py = np.full(WARP, tile_origin[1], dtype=np.int64)
    origins, dirs = generate_rays(camera, px, py)
    lo = np.zeros(3)
    hi = np.asarray(grid.shape, dtype=np.float64) - 1.0
    t_near, t_far = ray_box_intersect(origins, dirs, lo, hi)
    hit = t_far > t_near
    t_near = np.where(hit, t_near, 0.0)
    span = np.where(hit, t_far - t_near, 0.0)
    n_steps = np.ceil(span / step).astype(np.int64)
    max_steps = int(n_steps.max()) if n_steps.size else 0
    rows, masks = [], []
    nx, ny, nz = grid.shape
    for s in range(max_steps):
        t = t_near + (s + 0.5) * step
        active = s < n_steps
        pts = origins + t[:, None] * dirs
        i = np.clip(np.rint(pts[:, 0]).astype(np.int64), 0, nx - 1)
        j = np.clip(np.rint(pts[:, 1]).astype(np.int64), 0, ny - 1)
        k = np.clip(np.rint(pts[:, 2]).astype(np.int64), 0, nz - 1)
        rows.append(grid.offsets(i, j, k) * grid.itemsize)
        masks.append(active)
    if not rows:
        return CoalescingStats(0, 0, 0)
    return warp_transactions(np.stack(rows), np.stack(masks),
                             segment_bytes=segment_bytes,
                             itemsize=grid.itemsize)
