"""Trace-driven memory-hierarchy simulator (the PAPI/hardware substitute).

Feed it the line-address streams a kernel generates and it answers the
questions the paper asked of PAPI: how many requests reached each cache
level, and what did the memory system cost the program?

Public surface:

* :class:`~repro.memsim.cache.Cache` / :class:`CacheConfig` — one
  set-associative cache (LRU/FIFO/PLRU/random/direct);
* :class:`~repro.memsim.hierarchy.Machine` / :class:`PlatformSpec` —
  multi-core hierarchies with per-core, per-socket, and global levels;
* :data:`~repro.memsim.platforms.EDISON_IVYBRIDGE` and
  :data:`~repro.memsim.platforms.BABBAGE_MIC` — the paper's platforms;
* :class:`~repro.memsim.engine.SimulationEngine` — quantum-interleaved
  multi-thread simulation returning counters + cost-model runtime;
* :mod:`~repro.memsim.stackdist` — single-pass stack-distance
  histograms (:func:`stack_distance_histogram`,
  :class:`StackDistanceHistogram`, :class:`HistogramStore`,
  :func:`fully_associative_spec`) pricing every fully-associative LRU
  capacity at once, behind ``SimulationEngine(backend="stack")``;
* :class:`~repro.memsim.address.AddressSpace`,
  :class:`~repro.memsim.trace.TraceChunk` — trace plumbing.
"""

from .address import AddressSpace
from .cache import (
    Cache,
    CacheConfig,
    CacheStats,
    REPLACEMENT_POLICIES,
    REPLAY_BACKENDS,
)
from .cost import CostModel
from .energy import DEFAULT_ACCESS_ENERGY_NJ, EnergyModel, energy_of_result
from .gpu import (
    CoalescingStats,
    bilateral_warp_stats,
    volrend_warp_stats,
    warp_transactions,
)
from .engine import SimResult, SimulationEngine, ThreadWork
from .hierarchy import LevelSpec, Machine, PlatformSpec, ServiceCounts
from .stackdist import (
    HistogramStore,
    StackDistanceHistogram,
    fully_associative_spec,
    per_thread_histograms,
    stack_distance_histogram,
    stack_distances,
    stack_ineligibility,
)
from .prefetch import PrefetchConfig, StreamPrefetcher
from .platforms import (
    BABBAGE_MIC,
    EDISON_IVYBRIDGE,
    PLATFORMS,
    get_platform,
    scaled_ivybridge,
    scaled_mic,
    with_replacement,
)
from .trace import TraceChunk, collapse_consecutive, concat_chunks, offsets_to_lines
from .sanitize import (
    AccessSanitizer,
    SanitizeViolation,
)
from . import sanitize as _sanitize

__all__ = [
    "AccessSanitizer",
    "AddressSpace",
    "BABBAGE_MIC",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "CoalescingStats",
    "bilateral_warp_stats",
    "volrend_warp_stats",
    "warp_transactions",
    "CostModel",
    "DEFAULT_ACCESS_ENERGY_NJ",
    "EDISON_IVYBRIDGE",
    "EnergyModel",
    "energy_of_result",
    "HistogramStore",
    "StackDistanceHistogram",
    "fully_associative_spec",
    "per_thread_histograms",
    "stack_distance_histogram",
    "stack_distances",
    "stack_ineligibility",
    "LevelSpec",
    "Machine",
    "PLATFORMS",
    "PlatformSpec",
    "PrefetchConfig",
    "StreamPrefetcher",
    "REPLACEMENT_POLICIES",
    "REPLAY_BACKENDS",
    "SanitizeViolation",
    "ServiceCounts",
    "SimResult",
    "SimulationEngine",
    "ThreadWork",
    "TraceChunk",
    "collapse_consecutive",
    "concat_chunks",
    "get_platform",
    "offsets_to_lines",
    "scaled_ivybridge",
    "scaled_mic",
    "with_replacement",
]

# honor REPRO_SANITIZE=1 / =report: opt-in runtime access validation
# (see docs/STATIC_ANALYSIS.md); a no-op when the variable is unset
_sanitize.enable_from_env()
