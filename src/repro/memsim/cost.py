"""Cycle-level cost model: turn service counts into simulated runtime.

The paper reports wall-clock runtime and argues it tracks memory-system
utilization.  Our substitute makes that coupling explicit: each access
costs the latency of the level that served it (DRAM latency is divided
by the platform's memory-level parallelism), and each kernel operation
adds a fixed compute cost.  Runtime is the slowest thread's cycle count
divided by the clock — the shape of layout-vs-layout comparisons then
emerges entirely from where the accesses were served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .hierarchy import PlatformSpec, ServiceCounts

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Parameters converting service counts to cycles.

    Attributes
    ----------
    cpi_compute : float
        Compute cycles charged per kernel *operation* (the kernels report
        an op count per work item: stencil taps for the filter, sample
        compositing steps for the renderer).
    issue_cycles_per_access : float
        Pipeline cost of issuing a load, charged on top of the serving
        level's latency.  Keeps runtimes sane when everything hits L1.
    """

    cpi_compute: float = 1.0
    issue_cycles_per_access: float = 0.5

    def access_cycles(self, counts: ServiceCounts, spec: PlatformSpec) -> float:
        """Cycles spent on memory for one batch of service counts."""
        latencies: Dict[str, float] = {
            level.cache.name: level.latency_cycles for level in spec.levels
        }
        cycles = 0.0
        for name, served in counts.per_level.items():
            cycles += served * latencies[name]
        cycles += counts.mem * spec.mem_latency_cycles / spec.mem_parallelism
        cycles += counts.total * self.issue_cycles_per_access
        cycles += counts.tlb_misses * spec.tlb_miss_cycles
        return cycles

    def compute_cycles(self, n_ops: int) -> float:
        """Cycles spent on arithmetic for ``n_ops`` kernel operations."""
        return n_ops * self.cpi_compute

    def seconds(self, cycles: float, spec: PlatformSpec) -> float:
        """Convert cycles to seconds at the platform clock."""
        return cycles / (spec.freq_ghz * 1e9)
