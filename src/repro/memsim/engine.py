"""Trace-driven simulation engine with multi-thread interleaving.

Takes one :class:`~repro.memsim.trace.TraceChunk` per simulated thread
(plus that thread's core binding), interleaves the streams round-robin
in fixed quanta, and drives them through a :class:`Machine`.  Quantum
interleaving is what makes shared caches behave like shared caches:
threads pinned to the same core (MIC SMT) or socket (Ivy Bridge L3)
evict each other exactly as concurrent hardware threads would, up to
the quantum granularity.

The result bundles the platform counters, per-level service totals, and
the cost-model runtime, with optional extrapolation factors applied by
the experiment harness when it simulated only a sample of the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..instrument import trace as _trace
from .cache import REPLAY_BACKENDS, CacheStats
from .cost import CostModel
from .hierarchy import Machine, PlatformSpec, ServiceCounts
from .stackdist import HistogramStore, per_thread_histograms, stack_ineligibility, stream_key
from .trace import TraceChunk

__all__ = ["ThreadWork", "SimResult", "SimulationEngine"]


@dataclass
class ThreadWork:
    """One simulated thread's entire memory traffic and compute weight."""

    thread_id: int
    core: int
    chunk: TraceChunk


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    counters : dict
        PAPI-style counters as wired by the platform spec, already
        multiplied by ``count_scale``.
    level_served : dict
        Requests served per level name (plus ``"MEM"``), scaled.
    runtime_seconds : float
        Cost-model runtime (slowest thread), multiplied by ``work_scale``.
    per_thread_cycles : dict
        Unscaled cycles per simulated thread id.
    n_accesses : int
        Total (pre-collapse) accesses simulated, unscaled.
    count_scale, work_scale : float
        Extrapolation factors recorded by the harness (1.0 when the full
        workload was simulated).
    """

    counters: Dict[str, float]
    level_served: Dict[str, float]
    runtime_seconds: float
    per_thread_cycles: Dict[int, float]
    n_accesses: int
    count_scale: float = 1.0
    work_scale: float = 1.0

    def scaled(self, count_scale: float, work_scale: float) -> "SimResult":
        """Apply extrapolation factors (see harness sampling docs)."""
        return SimResult(
            counters={k: v * count_scale for k, v in self.counters.items()},
            level_served={k: v * count_scale for k, v in self.level_served.items()},
            runtime_seconds=self.runtime_seconds * work_scale,
            per_thread_cycles=dict(self.per_thread_cycles),
            n_accesses=self.n_accesses,
            count_scale=self.count_scale * count_scale,
            work_scale=self.work_scale * work_scale,
        )


class SimulationEngine:
    """Interleaves per-thread traces through a machine model.

    Parameters
    ----------
    spec : PlatformSpec
        The machine to instantiate.
    cost : CostModel, optional
        Cycle accounting; defaults to :class:`CostModel` defaults.
    quantum : int
        Lines per thread per round-robin turn.  Smaller quanta model
        finer-grained concurrency (more cross-thread interference);
        256 lines ≈ 16 KB of traffic per turn.
    backend : str
        Cache replay backend.  ``"scalar"``, ``"vector"``, and ``"auto"``
        are forwarded to every :class:`~repro.memsim.cache.Cache` and are
        bit-for-bit equivalent (see :mod:`repro.memsim.cache`).
        ``"stack"`` prices miss counts from a single stack-distance pass
        (:mod:`repro.memsim.stackdist`) — exact for a single-level
        fully-associative LRU platform, and automatically falling back to
        the replayer on any other configuration
        (:attr:`stack_fallback_reason` says why).
    histogram_store : HistogramStore, optional
        Where the stack backend caches per-stream histograms.  Pass a
        shared (optionally durable) store so capacity sweeps re-price
        geometries without recomputing; defaults to a private in-memory
        store.
    """

    def __init__(self, spec: PlatformSpec, cost: Optional[CostModel] = None,
                 quantum: int = 256, seed: int = 0, backend: str = "auto",
                 histogram_store: Optional[HistogramStore] = None):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if backend != "stack" and backend not in REPLAY_BACKENDS:
            raise ValueError(
                f"backend must be 'stack' or one of {REPLAY_BACKENDS}, "
                f"got {backend!r}"
            )
        self.spec = spec
        self.cost = cost or CostModel()
        self.quantum = quantum
        self.backend = backend
        #: why ``backend="stack"`` falls back to the replayer on this
        #: platform (None when stack pricing is exact and active)
        self.stack_fallback_reason: Optional[str] = (
            stack_ineligibility(spec) if backend == "stack" else None
        )
        self.histogram_store = histogram_store or HistogramStore()
        # the stack path keeps a replay-capable machine around both for
        # counter wiring and as the fallback engine
        machine_backend = "auto" if backend == "stack" else backend
        self.machine = Machine(spec, seed=seed, backend=machine_backend)

    @property
    def uses_stack(self) -> bool:
        """True when runs are priced from stack distances, not replayed."""
        return self.backend == "stack" and self.stack_fallback_reason is None

    def run(self, works: List[ThreadWork], reset: bool = True) -> SimResult:
        """Simulate all thread streams to completion and account costs."""
        if self.uses_stack:
            if not reset:
                raise ValueError(
                    "backend='stack' prices each run from a cold cache and "
                    "cannot continue warm state; use reset=True or a replay "
                    "backend"
                )
            return self._run_stack(works)
        if reset:
            self.machine.reset()
        for w in works:
            if not 0 <= w.core < self.spec.n_cores:
                raise ValueError(
                    f"thread {w.thread_id} bound to core {w.core}, but platform "
                    f"{self.spec.name} has {self.spec.n_cores} cores"
                )
        cycles: Dict[int, float] = {w.thread_id: 0.0 for w in works}
        served_total = ServiceCounts()
        with _trace.span("engine.replay", platform=self.spec.name,
                         threads=len(works), quantum=self.quantum) as sp:
            positions = [0] * len(works)
            pre_credit = [w.chunk.collapsed_hits for w in works]
            active = [w.chunk.lines.size > 0 or pre_credit[i] > 0
                      for i, w in enumerate(works)]
            q = self.quantum
            while any(active):
                for idx, w in enumerate(works):
                    if not active[idx]:
                        continue
                    pos = positions[idx]
                    batch = w.chunk.lines[pos:pos + q]
                    positions[idx] = pos + batch.size
                    credit = pre_credit[idx]
                    pre_credit[idx] = 0
                    counts = self.machine.access(w.core, batch,
                                                 pre_collapsed_hits=credit)
                    cycles[w.thread_id] += self.cost.access_cycles(counts,
                                                                   self.spec)
                    served_total = served_total.merge(counts)
                    if positions[idx] >= w.chunk.lines.size:
                        active[idx] = False
            sp.add("lines", sum(w.chunk.lines.size for w in works))
            sp.add("accesses", sum(w.chunk.n_accesses for w in works))
        with _trace.span("engine.cost") as sp:
            for w in works:
                cycles[w.thread_id] += self.cost.compute_cycles(w.chunk.n_ops)
            runtime = self.cost.seconds(max(cycles.values(), default=0.0),
                                        self.spec)
            level_served = {k: float(v)
                            for k, v in served_total.per_level.items()}
            level_served["MEM"] = float(served_total.mem)
            result = SimResult(
                counters={k: float(v)
                          for k, v in self.machine.all_counters().items()},
                level_served=level_served,
                runtime_seconds=runtime,
                per_thread_cycles=cycles,
                n_accesses=sum(w.chunk.n_accesses for w in works),
            )
            sp.add("mem_lines", level_served["MEM"])
        return result

    # -- stack-distance pricing ----------------------------------------------

    def _instance_streams(self, works: List[ThreadWork]):
        """Interleave the thread streams exactly as :meth:`run` would.

        Replays the round-robin quantum schedule without touching any
        cache, yielding per cache instance the (lines, thread_ids)
        arrays in machine arrival order, plus the pre-collapsed-hit
        credit per (instance, thread).  The interleave order is what
        makes a shared instance shared, so it must match the replayer's
        bit for bit.
        """
        batches: Dict[int, List[np.ndarray]] = {}
        batch_tids: Dict[int, List[np.ndarray]] = {}
        credits: Dict[int, Dict[int, int]] = {}
        keys = [self.machine.instance_key(0, w.core) for w in works]
        for key, w in zip(keys, works):
            credits.setdefault(key, {})
            credits[key][w.thread_id] = (credits[key].get(w.thread_id, 0)
                                         + w.chunk.collapsed_hits)
        positions = [0] * len(works)
        active = [w.chunk.lines.size > 0 for w in works]
        q = self.quantum
        while any(active):
            for idx, w in enumerate(works):
                if not active[idx]:
                    continue
                pos = positions[idx]
                batch = w.chunk.lines[pos:pos + q]
                positions[idx] = pos + batch.size
                key = keys[idx]
                batches.setdefault(key, []).append(batch)
                batch_tids.setdefault(key, []).append(
                    np.full(batch.size, w.thread_id, dtype=np.int64))
                if positions[idx] >= w.chunk.lines.size:
                    active[idx] = False
        streams = {}
        for key in credits:
            if key in batches:
                lines = np.concatenate(batches[key])
                tids = np.concatenate(batch_tids[key])
            else:
                lines = np.empty(0, dtype=np.int64)
                tids = np.empty(0, dtype=np.int64)
            streams[key] = (lines, tids, credits[key])
        return streams

    def _run_stack(self, works: List[ThreadWork]) -> SimResult:
        """Price the run from per-stream stack-distance histograms.

        Miss counts are bit-for-bit those of the replayer on this
        (single-level fully-associative LRU) platform; the runtime is
        the same linear cost model evaluated on whole-thread totals, so
        it matches the replayer's per-quantum accumulation up to float
        rounding.
        """
        self.machine.reset()
        for w in works:
            if not 0 <= w.core < self.spec.n_cores:
                raise ValueError(
                    f"thread {w.thread_id} bound to core {w.core}, but platform "
                    f"{self.spec.name} has {self.spec.n_cores} cores"
                )
        level = self.spec.levels[0]
        level_name = level.cache.name
        capacity_lines = level.cache.capacity_bytes // level.cache.line_bytes
        cycles: Dict[int, float] = {w.thread_id: 0.0 for w in works}
        total_hits = 0
        total_misses = 0
        store_hits_before = self.histogram_store.hits
        with _trace.span("engine.replay", platform=self.spec.name,
                         threads=len(works), quantum=self.quantum,
                         backend="stack") as sp:
            streams = self._instance_streams(works)
            instances = self.machine.level_instances(0)
            for key, (lines, tids, credit_by_tid) in streams.items():
                hists = self.histogram_store.get_or_compute(
                    stream_key(lines, tids),
                    lambda lines=lines, tids=tids:
                        per_thread_histograms(lines, tids))
                inst_hits = 0
                inst_misses = 0
                inst_cold = 0
                for tid, credit in credit_by_tid.items():
                    hist = hists.get(tid)
                    if hist is not None:
                        t_hits = hist.hits(capacity_lines)
                        t_misses = hist.misses(capacity_lines)
                        inst_cold += hist.cold
                    else:  # thread contributed only collapsed hits
                        t_hits = t_misses = 0
                    counts = ServiceCounts(
                        per_level={level_name: t_hits + credit},
                        mem=t_misses)
                    cycles[tid] += self.cost.access_cycles(counts, self.spec)
                    inst_hits += t_hits + credit
                    inst_misses += t_misses
                instances[key].stats = CacheStats(
                    accesses=inst_hits + inst_misses,
                    hits=inst_hits,
                    misses=inst_misses,
                    evictions=inst_misses - min(inst_cold, capacity_lines),
                )
                total_hits += inst_hits
                total_misses += inst_misses
            sp.add("lines", sum(w.chunk.lines.size for w in works))
            sp.add("accesses", sum(w.chunk.n_accesses for w in works))
            sp.add("histogram_cache_hits",
                   self.histogram_store.hits - store_hits_before)
        with _trace.span("engine.cost") as sp:
            for w in works:
                cycles[w.thread_id] += self.cost.compute_cycles(w.chunk.n_ops)
            runtime = self.cost.seconds(max(cycles.values(), default=0.0),
                                        self.spec)
            result = SimResult(
                counters={k: float(v)
                          for k, v in self.machine.all_counters().items()},
                level_served={level_name: float(total_hits),
                              "MEM": float(total_misses)},
                runtime_seconds=runtime,
                per_thread_cycles=cycles,
                n_accesses=sum(w.chunk.n_accesses for w in works),
            )
            sp.add("mem_lines", float(total_misses))
        return result
