"""Trace-driven simulation engine with multi-thread interleaving.

Takes one :class:`~repro.memsim.trace.TraceChunk` per simulated thread
(plus that thread's core binding), interleaves the streams round-robin
in fixed quanta, and drives them through a :class:`Machine`.  Quantum
interleaving is what makes shared caches behave like shared caches:
threads pinned to the same core (MIC SMT) or socket (Ivy Bridge L3)
evict each other exactly as concurrent hardware threads would, up to
the quantum granularity.

The result bundles the platform counters, per-level service totals, and
the cost-model runtime, with optional extrapolation factors applied by
the experiment harness when it simulated only a sample of the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..instrument import trace as _trace
from .cost import CostModel
from .hierarchy import Machine, PlatformSpec, ServiceCounts
from .trace import TraceChunk

__all__ = ["ThreadWork", "SimResult", "SimulationEngine"]


@dataclass
class ThreadWork:
    """One simulated thread's entire memory traffic and compute weight."""

    thread_id: int
    core: int
    chunk: TraceChunk


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    counters : dict
        PAPI-style counters as wired by the platform spec, already
        multiplied by ``count_scale``.
    level_served : dict
        Requests served per level name (plus ``"MEM"``), scaled.
    runtime_seconds : float
        Cost-model runtime (slowest thread), multiplied by ``work_scale``.
    per_thread_cycles : dict
        Unscaled cycles per simulated thread id.
    n_accesses : int
        Total (pre-collapse) accesses simulated, unscaled.
    count_scale, work_scale : float
        Extrapolation factors recorded by the harness (1.0 when the full
        workload was simulated).
    """

    counters: Dict[str, float]
    level_served: Dict[str, float]
    runtime_seconds: float
    per_thread_cycles: Dict[int, float]
    n_accesses: int
    count_scale: float = 1.0
    work_scale: float = 1.0

    def scaled(self, count_scale: float, work_scale: float) -> "SimResult":
        """Apply extrapolation factors (see harness sampling docs)."""
        return SimResult(
            counters={k: v * count_scale for k, v in self.counters.items()},
            level_served={k: v * count_scale for k, v in self.level_served.items()},
            runtime_seconds=self.runtime_seconds * work_scale,
            per_thread_cycles=dict(self.per_thread_cycles),
            n_accesses=self.n_accesses,
            count_scale=self.count_scale * count_scale,
            work_scale=self.work_scale * work_scale,
        )


class SimulationEngine:
    """Interleaves per-thread traces through a machine model.

    Parameters
    ----------
    spec : PlatformSpec
        The machine to instantiate.
    cost : CostModel, optional
        Cycle accounting; defaults to :class:`CostModel` defaults.
    quantum : int
        Lines per thread per round-robin turn.  Smaller quanta model
        finer-grained concurrency (more cross-thread interference);
        256 lines ≈ 16 KB of traffic per turn.
    backend : str
        Cache replay backend (``"scalar"``, ``"vector"``, ``"auto"``),
        forwarded to every :class:`~repro.memsim.cache.Cache`.  Both
        backends are bit-for-bit equivalent; see :mod:`repro.memsim.cache`.
    """

    def __init__(self, spec: PlatformSpec, cost: Optional[CostModel] = None,
                 quantum: int = 256, seed: int = 0, backend: str = "auto"):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.spec = spec
        self.cost = cost or CostModel()
        self.quantum = quantum
        self.machine = Machine(spec, seed=seed, backend=backend)

    def run(self, works: List[ThreadWork], reset: bool = True) -> SimResult:
        """Simulate all thread streams to completion and account costs."""
        if reset:
            self.machine.reset()
        for w in works:
            if not 0 <= w.core < self.spec.n_cores:
                raise ValueError(
                    f"thread {w.thread_id} bound to core {w.core}, but platform "
                    f"{self.spec.name} has {self.spec.n_cores} cores"
                )
        cycles: Dict[int, float] = {w.thread_id: 0.0 for w in works}
        served_total = ServiceCounts()
        with _trace.span("engine.replay", platform=self.spec.name,
                         threads=len(works), quantum=self.quantum) as sp:
            positions = [0] * len(works)
            pre_credit = [w.chunk.collapsed_hits for w in works]
            active = [w.chunk.lines.size > 0 or pre_credit[i] > 0
                      for i, w in enumerate(works)]
            q = self.quantum
            while any(active):
                for idx, w in enumerate(works):
                    if not active[idx]:
                        continue
                    pos = positions[idx]
                    batch = w.chunk.lines[pos:pos + q]
                    positions[idx] = pos + batch.size
                    credit = pre_credit[idx]
                    pre_credit[idx] = 0
                    counts = self.machine.access(w.core, batch,
                                                 pre_collapsed_hits=credit)
                    cycles[w.thread_id] += self.cost.access_cycles(counts,
                                                                   self.spec)
                    served_total = served_total.merge(counts)
                    if positions[idx] >= w.chunk.lines.size:
                        active[idx] = False
            sp.add("lines", sum(w.chunk.lines.size for w in works))
            sp.add("accesses", sum(w.chunk.n_accesses for w in works))
        with _trace.span("engine.cost") as sp:
            for w in works:
                cycles[w.thread_id] += self.cost.compute_cycles(w.chunk.n_ops)
            runtime = self.cost.seconds(max(cycles.values(), default=0.0),
                                        self.spec)
            level_served = {k: float(v)
                            for k, v in served_total.per_level.items()}
            level_served["MEM"] = float(served_total.mem)
            result = SimResult(
                counters={k: float(v)
                          for k, v in self.machine.all_counters().items()},
                level_served=level_served,
                runtime_seconds=runtime,
                per_thread_cycles=cycles,
                n_accesses=sum(w.chunk.n_accesses for w in works),
            )
            sp.add("mem_lines", level_served["MEM"])
        return result
