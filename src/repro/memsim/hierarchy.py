"""Multi-level, multi-core cache hierarchies.

Assembles :class:`~repro.memsim.cache.Cache` instances into a machine
model: private levels are instantiated per core, shared levels per
socket or per machine.  An access enters at the L1 of the issuing core
and percolates outward; the machine reports, per call, how many requests
each level served — the raw material for both the PAPI-style counters
and the runtime cost model.

Scope semantics
---------------
``core``
    One instance per core.  Hardware threads mapped to the same core
    share it (this is how the MIC's 4-way SMT shares its 512 KB L2).
``socket``
    One instance per socket (Ivy Bridge's 30 MB L3 is per-processor;
    the paper's "compact" pinning keeps ≤12 threads on one socket).
``machine``
    One instance globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cache import Cache, CacheConfig, CacheStats
from .prefetch import PrefetchConfig, StreamPrefetcher

__all__ = ["LevelSpec", "PlatformSpec", "ServiceCounts", "Machine"]

_SCOPES = ("core", "socket", "machine")


@dataclass(frozen=True)
class LevelSpec:
    """One cache level of a platform: geometry + scope + latency.

    ``prefetch`` optionally attaches a per-core stream prefetcher that
    watches this level's request stream (see :mod:`repro.memsim.prefetch`).
    """

    cache: CacheConfig
    scope: str = "core"
    latency_cycles: float = 4.0
    prefetch: Optional[PrefetchConfig] = None

    def __post_init__(self):
        if self.scope not in _SCOPES:
            raise ValueError(f"scope must be one of {_SCOPES}, got {self.scope!r}")


@dataclass(frozen=True)
class PlatformSpec:
    """A machine model: cores, SMT width, clock, cache levels, memory.

    Attributes
    ----------
    name : str
        Human-readable platform label.
    n_cores : int
        Physical cores (total across sockets).
    n_sockets : int
        Sockets; cores are split evenly among them.
    smt : int
        Hardware threads per core.
    freq_ghz : float
        Core clock, used to convert cycles to seconds.
    levels : tuple of LevelSpec
        Inner to outer (L1 first).
    mem_latency_cycles : float
        Cost of a request served by DRAM.
    mem_parallelism : float
        Effective overlap of outstanding memory requests; the cost model
        divides the DRAM latency by this (≥ 1).
    counters : dict
        PAPI-style counter name → ``(level_name, "accesses"|"misses")``.
    """

    name: str
    n_cores: int
    n_sockets: int
    smt: int
    freq_ghz: float
    levels: Tuple[LevelSpec, ...]
    mem_latency_cycles: float
    mem_parallelism: float = 4.0
    counters: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: optional per-core data TLB: a CacheConfig whose line_bytes is the
    #: page size and whose geometry gives the entry count/associativity.
    #: Counter wiring may reference it by its name (e.g. ("TLB", "misses")).
    tlb: Optional[CacheConfig] = None
    #: page-walk penalty charged per TLB miss by the cost model.
    tlb_miss_cycles: float = 30.0
    #: enforce LLC inclusion: a line evicted from the outermost level is
    #: back-invalidated from the inner caches it covers (real Ivy Bridge
    #: L3s are inclusive; the default non-inclusive model is simpler and
    #: the difference is measured by tests)
    inclusive: bool = False

    def __post_init__(self):
        if self.n_cores % self.n_sockets:
            raise ValueError(
                f"{self.n_cores} cores do not split over {self.n_sockets} sockets"
            )
        if not self.levels:
            raise ValueError("platform needs at least one cache level")
        line_sizes = {lv.cache.line_bytes for lv in self.levels}
        if len(line_sizes) != 1:
            raise ValueError(f"mixed line sizes unsupported: {line_sizes}")

    @property
    def cores_per_socket(self) -> int:
        """Physical cores per socket."""
        return self.n_cores // self.n_sockets

    @property
    def line_bytes(self) -> int:
        """Cache-line size (uniform across levels)."""
        return self.levels[0].cache.line_bytes

    @property
    def max_threads(self) -> int:
        """Hardware thread capacity ``n_cores * smt``."""
        return self.n_cores * self.smt

    def level_names(self) -> List[str]:
        """Level labels, inner to outer."""
        return [lv.cache.name for lv in self.levels]

    def scaled(self, factor: int, suffix: str = "-scaled") -> "PlatformSpec":
        """Capacities divided by ``factor`` (see :meth:`CacheConfig.scaled`).

        Latencies, counts, clocks, and counter wiring are unchanged — the
        scaled platform is the same machine with proportionally smaller
        caches, for experiments on proportionally smaller volumes.
        """
        levels = tuple(
            replace(lv, cache=lv.cache.scaled(factor)) for lv in self.levels
        )
        return replace(self, name=self.name + suffix, levels=levels)


@dataclass
class ServiceCounts:
    """How many requests of one batch each memory level served."""

    per_level: Dict[str, int] = field(default_factory=dict)
    mem: int = 0
    tlb_misses: int = 0

    @property
    def total(self) -> int:
        """Total requests in the batch (TLB events are not requests)."""
        return sum(self.per_level.values()) + self.mem

    def merge(self, other: "ServiceCounts") -> "ServiceCounts":
        """Elementwise sum."""
        out = ServiceCounts(mem=self.mem + other.mem,
                            tlb_misses=self.tlb_misses + other.tlb_misses)
        for k in set(self.per_level) | set(other.per_level):
            out.per_level[k] = self.per_level.get(k, 0) + other.per_level.get(k, 0)
        return out


class Machine:
    """Instantiated cache hierarchy for a :class:`PlatformSpec`.

    Use :meth:`access` to push a batch of line ids through one core's
    cache path.  Thread→core placement is the caller's job (see
    :mod:`repro.parallel.affinity`).
    """

    def __init__(self, spec: PlatformSpec, seed: int = 0,
                 backend: str = "auto"):
        self.spec = spec
        self.backend = backend
        # caches[level_index] maps instance key -> Cache
        self._caches: List[Dict[int, Cache]] = []
        # prefetchers[level_index][core] — stream detection is per
        # requesting core even when the cache instance is shared
        self._prefetchers: List[Optional[Dict[int, StreamPrefetcher]]] = []
        for li, level in enumerate(spec.levels):
            instances: Dict[int, Cache] = {}
            n = {
                "core": spec.n_cores,
                "socket": spec.n_sockets,
                "machine": 1,
            }[level.scope]
            for inst in range(n):
                cache = Cache(level.cache, seed=seed + 31 * li + inst,
                              backend=backend)
                if spec.inclusive and li == len(spec.levels) - 1 and li > 0:
                    cache.track_evictions = True
                instances[inst] = cache
            self._caches.append(instances)
            if level.prefetch is not None:
                self._prefetchers.append({
                    core: StreamPrefetcher(level.prefetch)
                    for core in range(spec.n_cores)
                })
            else:
                self._prefetchers.append(None)
        # per-core data TLBs over page numbers
        self._tlbs: Optional[Dict[int, Cache]] = None
        if spec.tlb is not None:
            if spec.tlb.line_bytes < spec.line_bytes:
                raise ValueError(
                    f"TLB page size {spec.tlb.line_bytes} smaller than the "
                    f"cache line size {spec.line_bytes}"
                )
            self._tlbs = {
                core: Cache(spec.tlb, seed=seed + 977 + core, backend=backend)
                for core in range(spec.n_cores)
            }
            self._lines_per_page = spec.tlb.line_bytes // spec.line_bytes

    # -- routing -------------------------------------------------------------

    def instance_key(self, level_index: int, core: int) -> int:
        """Which instance of the level serves ``core`` (scope routing)."""
        level = self.spec.levels[level_index]
        if level.scope == "core":
            return core
        if level.scope == "socket":
            return core // self.spec.cores_per_socket
        return 0

    def level_instances(self, level_index: int) -> Dict[int, Cache]:
        """The instance map of one level (instance key → cache)."""
        return self._caches[level_index]

    def _instance_for(self, level_index: int, core: int) -> Cache:
        return self._caches[level_index][self.instance_key(level_index, core)]

    def access(self, core: int, lines: np.ndarray,
               pre_collapsed_hits: int = 0) -> ServiceCounts:
        """Push ``lines`` (in order) through ``core``'s cache path.

        ``pre_collapsed_hits`` accounts for accesses removed upstream by
        consecutive-same-line compression; they are exact L1 hits and are
        credited to the innermost level without simulation.

        Returns the per-level service counts for this batch.
        """
        if not 0 <= core < self.spec.n_cores:
            raise ValueError(f"core {core} out of range 0..{self.spec.n_cores - 1}")
        counts = ServiceCounts()
        lines = np.asarray(lines, dtype=np.int64)
        if self._tlbs is not None and lines.size:
            pages = lines // self._lines_per_page
            keep = np.empty(pages.size, dtype=bool)
            keep[0] = True
            np.not_equal(pages[1:], pages[:-1], out=keep[1:])
            tlb = self._tlbs[core]
            missed_pages = tlb.access_lines(pages[keep])
            # collapsed repeats are guaranteed TLB hits
            repeats = int(pages.size - keep.sum())
            tlb.stats.accesses += repeats
            tlb.stats.hits += repeats
            counts.tlb_misses = int(missed_pages.size)
        pending = lines
        for li, level in enumerate(self.spec.levels):
            cache = self._instance_for(li, core)
            name = level.cache.name
            if li == 0 and pre_collapsed_hits:
                cache.stats.accesses += pre_collapsed_hits
                cache.stats.hits += pre_collapsed_hits
            if pending.size == 0:
                counts.per_level.setdefault(name, 0)
                if li == 0 and pre_collapsed_hits:
                    counts.per_level[name] += pre_collapsed_hits
                continue
            prefetchers = self._prefetchers[li]
            if prefetchers is not None:
                # timely-prefetch approximation: observe/install and
                # demand-access in small sub-batches so the prefetcher
                # never runs unboundedly ahead of the demand stream
                # (which would evict its own fills)
                pf = prefetchers[core]
                missed_parts = []
                evicted_all: list = []
                for start in range(0, pending.size, 16):
                    part = pending[start:start + 16]
                    pf.observe_and_fill(part, cache)
                    missed_parts.append(cache.access_lines(part))
                    if cache.track_evictions:
                        evicted_all.extend(cache.last_evicted)
                missed = np.concatenate(missed_parts)
                if cache.track_evictions:
                    cache.last_evicted = evicted_all
            else:
                missed = cache.access_lines(pending)
            if (self.spec.inclusive and li == len(self.spec.levels) - 1
                    and li > 0 and cache.last_evicted):
                self._back_invalidate(li, core, cache.last_evicted)
            served = pending.size - missed.size
            counts.per_level[name] = served + (
                pre_collapsed_hits if li == 0 else 0
            )
            pending = missed
        counts.mem = int(pending.size)
        return counts

    def _back_invalidate(self, llc_index: int, core: int,
                         evicted: list) -> None:
        """Inclusion enforcement: drop LLC-evicted lines from the inner
        caches of every core sharing that LLC instance."""
        level = self.spec.levels[llc_index]
        if level.scope == "machine":
            cores = range(self.spec.n_cores)
        elif level.scope == "socket":
            cps = self.spec.cores_per_socket
            socket = core // cps
            cores = range(socket * cps, (socket + 1) * cps)
        else:
            cores = (core,)
        lines = np.asarray(evicted, dtype=np.int64)
        for inner in range(llc_index):
            for c in cores:
                self._instance_for(inner, c).invalidate(lines)

    # -- counters ------------------------------------------------------------

    def level_stats(self, level_name: str) -> CacheStats:
        """Aggregate stats of all instances of the named level (TLB included)."""
        for li, level in enumerate(self.spec.levels):
            if level.cache.name == level_name:
                agg = CacheStats()
                for cache in self._caches[li].values():
                    agg = agg.merge(cache.stats)
                return agg
        if self._tlbs is not None and self.spec.tlb.name == level_name:
            agg = CacheStats()
            for tlb in self._tlbs.values():
                agg = agg.merge(tlb.stats)
            return agg
        raise KeyError(f"no level named {level_name!r}")

    def counter(self, name: str) -> int:
        """Read a PAPI-style counter defined by the platform spec."""
        try:
            level_name, kind = self.spec.counters[name]
        except KeyError:
            raise KeyError(
                f"counter {name!r} not defined for platform {self.spec.name!r}; "
                f"available: {sorted(self.spec.counters)}"
            ) from None
        stats = self.level_stats(level_name)
        return getattr(stats, kind)

    def all_counters(self) -> Dict[str, int]:
        """All platform counters as a dict."""
        return {name: self.counter(name) for name in self.spec.counters}

    def prefetch_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-level prefetcher totals: {level: {issued, installed}}."""
        out: Dict[str, Dict[str, int]] = {}
        for li, prefetchers in enumerate(self._prefetchers):
            if prefetchers is None:
                continue
            name = self.spec.levels[li].cache.name
            out[name] = {
                "issued": sum(p.issued for p in prefetchers.values()),
                "installed": sum(p.installed for p in prefetchers.values()),
            }
        return out

    def reset(self) -> None:
        """Empty all caches and zero all counters."""
        for instances in self._caches:
            for cache in instances.values():
                cache.reset()
        for prefetchers in self._prefetchers:
            if prefetchers is not None:
                for p in prefetchers.values():
                    p.reset()
        if self._tlbs is not None:
            for tlb in self._tlbs.values():
                tlb.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine({self.spec.name}, cores={self.spec.n_cores})"
