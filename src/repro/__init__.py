"""repro: space-filling-curve memory layouts for data-intensive kernels.

A from-scratch reproduction of Bethel, Camp, Donofrio & Howison,
"Improving Performance of Structured-Memory, Data-Intensive Applications
on Multi-core Platforms via a Space-Filling Curve Memory Layout"
(IPDPS 2015 Workshops / HPDIC).

Subpackages
-----------
``repro.core``
    The paper's contribution: array-order, Z-order (Morton), Hilbert and
    tiled layouts behind a uniform ``index(i, j, k)`` interface, plus
    grids and locality metrics.
``repro.memsim``
    Trace-driven cache-hierarchy simulator standing in for PAPI and the
    paper's Ivy Bridge / MIC hardware.
``repro.parallel``
    Simulated shared-memory parallelism: pencil/tile decomposition,
    static and worker-pool scheduling, thread affinity.
``repro.kernels``
    The two studied algorithms: the 3-D bilateral filter and the
    raycasting volume renderer, each with a value path and a stream path.
``repro.instrument``
    PAPI-like event sets and the paper's d_s = (a - z)/z metric.
``repro.data``
    Synthetic MRI-phantom and combustion-like volumes.
``repro.experiments``
    One driver per paper figure (2–6) plus the ablations.
``repro.analysis``
    Reuse-distance, stride-spectrum and working-set tooling explaining
    *why* the Z-order layout wins.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
