"""Dataset substitutes (synthetic MRI phantom, turbulence field) and I/O."""

from .io import read_npy, read_raw, write_npy, write_raw
from .synthetic import (
    SHEPP_LOGAN_3D,
    checkerboard,
    combustion_field,
    linear_ramp,
    mri_phantom,
)

__all__ = [
    "SHEPP_LOGAN_3D",
    "checkerboard",
    "combustion_field",
    "linear_ramp",
    "mri_phantom",
    "read_npy",
    "read_raw",
    "write_npy",
    "write_raw",
]
