"""Synthetic dataset substitutes for the paper's test volumes.

The paper filters a 512³ MRI head scan (UC Davis) and renders a 512³
combustion-simulation field; neither is redistributable, so we generate
stand-ins with the structural features the kernels care about:

* :func:`mri_phantom` — a 3-D Shepp–Logan-style ellipsoid phantom with
  optional Rician-like noise: piecewise-constant tissue regions with
  sharp boundaries, the regime where bilateral filtering is interesting
  (edges to preserve, noise to remove);
* :func:`combustion_field` — spectral synthesis of a turbulence-like
  scalar field with a Kolmogorov k^(-5/3) spectrum: multi-scale coherent
  structure for the transfer function to pick out.

Crucially, the kernels' *access streams* are data-independent (fixed
stencil; viewpoint-driven rays with early termination off), so the
substitution cannot change the memory-system comparison — see DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "mri_phantom",
    "combustion_field",
    "linear_ramp",
    "checkerboard",
    "SHEPP_LOGAN_3D",
]

#: 3-D Shepp–Logan-like ellipsoids: (center xyz in [-1,1], semi-axes,
#: rotation about z in degrees, additive intensity).
SHEPP_LOGAN_3D: Tuple[Tuple[Tuple[float, float, float],
                            Tuple[float, float, float], float, float], ...] = (
    ((0.0, 0.0, 0.0), (0.69, 0.92, 0.81), 0.0, 1.0),       # outer skull
    ((0.0, -0.0184, 0.0), (0.6624, 0.874, 0.78), 0.0, -0.8),  # brain
    ((0.22, 0.0, 0.0), (0.11, 0.31, 0.22), -18.0, -0.2),    # right ventricle
    ((-0.22, 0.0, 0.0), (0.16, 0.41, 0.28), 18.0, -0.2),    # left ventricle
    ((0.0, 0.35, -0.15), (0.21, 0.25, 0.41), 0.0, 0.1),     # upper blob
    ((0.0, 0.1, 0.25), (0.046, 0.046, 0.05), 0.0, 0.1),     # small lesion
    ((0.0, -0.1, 0.25), (0.046, 0.046, 0.05), 0.0, 0.1),    # small lesion
    ((-0.08, -0.605, 0.0), (0.046, 0.023, 0.05), 0.0, 0.1),  # lower detail
    ((0.06, -0.605, 0.0), (0.023, 0.046, 0.05), 0.0, 0.1),  # lower detail
)


def mri_phantom(shape: Sequence[int], noise: float = 0.05,
                seed: int = 0) -> np.ndarray:
    """Ellipsoid phantom volume in [0, 1], shape ``(nx, ny, nz)``.

    ``noise`` is the standard deviation of additive Gaussian noise
    folded through ``abs`` (a cheap Rician approximation, matching MRI
    magnitude-image statistics); 0 disables it.
    """
    nx, ny, nz = (int(s) for s in shape)
    x = np.linspace(-1.0, 1.0, nx)
    y = np.linspace(-1.0, 1.0, ny)
    z = np.linspace(-1.0, 1.0, nz)
    X, Y, Z = np.meshgrid(x, y, z, indexing="ij")
    vol = np.zeros((nx, ny, nz), dtype=np.float64)
    for (cx, cy, cz), (ax, ay, az), angle_deg, intensity in SHEPP_LOGAN_3D:
        th = np.radians(angle_deg)
        ct, st = np.cos(th), np.sin(th)
        xr = (X - cx) * ct + (Y - cy) * st
        yr = -(X - cx) * st + (Y - cy) * ct
        zr = Z - cz
        inside = (xr / ax) ** 2 + (yr / ay) ** 2 + (zr / az) ** 2 <= 1.0
        vol[inside] += intensity
    if noise > 0:
        rng = np.random.default_rng(seed)
        vol = np.abs(vol + rng.normal(0.0, noise, size=vol.shape))
    lo, hi = vol.min(), vol.max()
    if hi > lo:
        vol = (vol - lo) / (hi - lo)
    return vol.astype(np.float32)


def combustion_field(shape: Sequence[int], seed: int = 0,
                     slope: float = -5.0 / 3.0,
                     k_min: float = 1.0) -> np.ndarray:
    """Turbulence-like scalar field in [0, 1] via spectral synthesis.

    Draws Fourier modes with random phases and amplitudes following an
    isotropic power spectrum E(k) ∝ k^slope (Kolmogorov by default),
    then inverse-transforms.  Produces the multi-scale filamentary
    structure characteristic of combustion/turbulence scalars.
    """
    nx, ny, nz = (int(s) for s in shape)
    rng = np.random.default_rng(seed)
    kx = np.fft.fftfreq(nx)[:, None, None] * nx
    ky = np.fft.fftfreq(ny)[None, :, None] * ny
    kz = np.fft.rfftfreq(nz)[None, None, :] * nz
    kmag = np.sqrt(kx ** 2 + ky ** 2 + kz ** 2)
    safe = np.where(kmag > 0, kmag, 1.0)
    # shell-integrated spectrum E(k) ~ k^slope needs per-mode power
    # k^(slope-2) in 3-D (a shell of radius k holds ~k^2 modes), hence
    # per-mode amplitude k^((slope-2)/2)
    amplitude = np.where(kmag >= k_min, safe ** ((slope - 2.0) / 2.0), 0.0)
    amplitude[0, 0, 0] = 0.0  # no DC power
    phases = rng.uniform(0, 2 * np.pi, size=amplitude.shape)
    noise = rng.normal(size=amplitude.shape)
    spectrum = amplitude * noise * np.exp(1j * phases)
    vol = np.fft.irfftn(spectrum, s=(nx, ny, nz), axes=(0, 1, 2))
    lo, hi = vol.min(), vol.max()
    if hi > lo:
        vol = (vol - lo) / (hi - lo)
    return vol.astype(np.float32)


def linear_ramp(shape: Sequence[int], axis: int = 0) -> np.ndarray:
    """Volume rising linearly 0→1 along ``axis`` (analytic test field)."""
    nx, ny, nz = (int(s) for s in shape)
    n = (nx, ny, nz)[axis]
    ramp = np.linspace(0.0, 1.0, n, dtype=np.float32)
    view = [1, 1, 1]
    view[axis] = n
    return np.broadcast_to(ramp.reshape(view), (nx, ny, nz)).copy()


def checkerboard(shape: Sequence[int], period: int = 4) -> np.ndarray:
    """Binary checkerboard volume (worst case for edge-preserving filters)."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    nx, ny, nz = (int(s) for s in shape)
    i, j, k = np.meshgrid(
        np.arange(nx) // period,
        np.arange(ny) // period,
        np.arange(nz) // period,
        indexing="ij",
    )
    return ((i + j + k) % 2).astype(np.float32)
