"""Volume I/O: raw bricks (the format HPC viz tools exchange) and .npy.

Raw files are bare little-endian element streams with the x index
fastest (the array-order convention); shape and dtype travel out of
band, as with the paper's datasets.
"""

from __future__ import annotations

import os
from typing import Sequence, Tuple

import numpy as np

__all__ = ["write_raw", "read_raw", "write_npy", "read_npy"]


def write_raw(path: str, dense: np.ndarray) -> None:
    """Write a dense ``(nx, ny, nz)`` volume as raw x-fastest bytes."""
    dense = np.asarray(dense)
    if dense.ndim != 3:
        raise ValueError(f"expected a 3-D volume, got shape {dense.shape}")
    # dense[i, j, k] with i fastest on disk == C-order of the (k, j, i) view
    dense.transpose(2, 1, 0).astype(dense.dtype.newbyteorder("<")).tofile(path)


def read_raw(path: str, shape: Sequence[int], dtype=np.float32) -> np.ndarray:
    """Read a raw x-fastest volume into dense ``(nx, ny, nz)`` form."""
    nx, ny, nz = (int(s) for s in shape)
    dt = np.dtype(dtype).newbyteorder("<")
    expected = nx * ny * nz * dt.itemsize
    actual = os.path.getsize(path)
    if actual != expected:
        raise ValueError(
            f"{path}: size {actual} B does not match shape {(nx, ny, nz)} "
            f"x {dt} = {expected} B"
        )
    flat = np.fromfile(path, dtype=dt)
    return flat.reshape(nz, ny, nx).transpose(2, 1, 0).astype(dtype)


def write_npy(path: str, dense: np.ndarray) -> None:
    """Write a dense volume as .npy (shape/dtype self-describing)."""
    np.save(path, np.asarray(dense))


def read_npy(path: str) -> np.ndarray:
    """Read a .npy volume."""
    vol = np.load(path)
    if vol.ndim != 3:
        raise ValueError(f"{path}: expected a 3-D volume, got shape {vol.shape}")
    return vol
