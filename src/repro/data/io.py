"""Volume I/O: raw bricks (the format HPC viz tools exchange) and .npy.

Raw files are bare little-endian element streams with the x index
fastest (the array-order convention); shape and dtype travel out of
band, as with the paper's datasets.

All writes go through the durability layer
(:mod:`repro.resilience.artifacts`): atomic replace plus a sidecar
integrity record, so a half-written or bit-rotted volume is detected
and quarantined on read instead of silently feeding wrong voxels into a
sweep.  Volumes written by older revisions (no sidecar) still load.
"""

from __future__ import annotations

import io
import os
from typing import Sequence, Tuple

import numpy as np

from ..resilience import artifacts as _artifacts

__all__ = ["write_raw", "read_raw", "write_npy", "read_npy"]


def write_raw(path: str, dense: np.ndarray) -> None:
    """Write a dense ``(nx, ny, nz)`` volume as raw x-fastest bytes.

    Atomic (temp + ``os.replace``) with a sidecar integrity record.
    """
    dense = np.asarray(dense)
    if dense.ndim != 3:
        raise ValueError(f"expected a 3-D volume, got shape {dense.shape}")
    # dense[i, j, k] with i fastest on disk == C-order of the (k, j, i) view
    data = dense.transpose(2, 1, 0) \
        .astype(dense.dtype.newbyteorder("<")).tobytes()
    _artifacts.write_artifact(path, data, kind="raw-volume")


def read_raw(path: str, shape: Sequence[int], dtype=np.float32) -> np.ndarray:
    """Read a raw x-fastest volume into dense ``(nx, ny, nz)`` form.

    Verified against the sidecar integrity record first (when one
    exists): a corrupt file is quarantined and raises
    :class:`~repro.resilience.artifacts.ArtifactIntegrityError` rather
    than decoding into wrong voxels.
    """
    data = _artifacts.read_artifact(path)
    nx, ny, nz = (int(s) for s in shape)
    dt = np.dtype(dtype).newbyteorder("<")
    expected = nx * ny * nz * dt.itemsize
    if len(data) != expected:
        raise ValueError(
            f"{path}: size {len(data)} B does not match shape {(nx, ny, nz)} "
            f"x {dt} = {expected} B"
        )
    flat = np.frombuffer(data, dtype=dt)
    return flat.reshape(nz, ny, nx).transpose(2, 1, 0).astype(dtype)


def write_npy(path: str, dense: np.ndarray) -> None:
    """Write a dense volume as .npy (shape/dtype self-describing).

    Atomic (temp + ``os.replace``) with a sidecar integrity record.
    """
    buffer = io.BytesIO()
    # in-memory .npy encode feeding the atomic writer, not a disk write
    np.save(buffer, np.asarray(dense))  # repro: noqa[RPC403]
    _artifacts.write_artifact(path, buffer.getvalue(), kind="npy-volume")


def read_npy(path: str) -> np.ndarray:
    """Read a .npy volume (integrity-verified when a sidecar exists)."""
    data = _artifacts.read_artifact(path)
    vol = np.load(io.BytesIO(data), allow_pickle=False)
    if vol.ndim != 3:
        raise ValueError(f"{path}: expected a 3-D volume, got shape {vol.shape}")
    return vol
