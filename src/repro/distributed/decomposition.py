"""Domain decomposition across distributed-memory ranks.

The paper's renderer is hybrid-parallel (its reference [18]): MPI ranks
each own a sub-volume and render it with the shared-memory machinery the
paper studies.  This module provides the rank-level decomposition: the
volume is cut into equal blocks, and blocks are assigned to ranks either
in scanline order (contiguous slabs) or along a space-filling curve —
the distributed-memory use of SFCs the paper cites via DeFord &
Kalyanaraman: curve-ordered partitions are *compact*, so they expose
less surface per rank and therefore less halo/ghost communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.bits import ilog2, is_power_of_two
from ..core.hilbert import hilbert_encode
from ..core.morton import morton_encode_3d

__all__ = ["Block", "BlockDecomposition", "CartesianGridPartition",
           "PARTITION_ORDERS", "process_grid"]

PARTITION_ORDERS = ("scan", "morton", "hilbert")


def process_grid(n_ranks: int,
                 shape: Sequence[int]) -> Tuple[int, int, int]:
    """Factor ``n_ranks`` into a (px, py, pz) process grid over ``shape``.

    The classic Cartesian-communicator shape (``MPI_Dims_create``
    discipline): among all factorizations whose per-axis counts fit
    the extents, pick the one minimizing the surface area of the
    resulting box — the same halo-minimization objective the rest of
    this module scores.  Deterministic tie-break by the factorization
    tuple itself.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    nx, ny, nz = (int(s) for s in shape)
    best = None
    for px in range(1, n_ranks + 1):
        if n_ranks % px:
            continue
        rest = n_ranks // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            pz = rest // py
            if px > nx or py > ny or pz > nz:
                continue
            bx, by, bz = nx / px, ny / py, nz / pz
            surface = 2.0 * (bx * by + by * bz + bz * bx)
            key = (surface, (px, py, pz))
            if best is None or key < best:
                best = key
    if best is None:
        raise ValueError(
            f"{n_ranks} ranks do not factor into grid {shape}")
    return best[1]


class CartesianGridPartition:
    """A rigid box-grid decomposition: ``n_ranks`` boxes, one per rank.

    The **block-Cartesian strawman** the elastic serving tier measures
    itself against (:mod:`repro.serve.cluster`): the grid is cut into
    a :func:`process_grid` of near-cubic boxes with balanced per-axis
    boundaries, rank = box position in the process grid.  Good halo
    behavior — but the box *topology* is a function of the rank
    count, so adding or removing one rank recuts every boundary and
    most cells change owner.  Contiguous SFC ranges, by contrast,
    move only the ranges that crossed the changed rank; that gap is
    exactly what the chaos gate pins.
    """

    def __init__(self, shape: Sequence[int], n_ranks: int):
        self.shape = tuple(int(s) for s in shape)
        self.n_ranks = int(n_ranks)
        self.dims = process_grid(self.n_ranks, self.shape)
        # balanced split points per axis: axis i of extent n cut into
        # p runs of floor/ceil(n/p) cells
        self._bounds = [
            [round(i * n / p) for i in range(p + 1)]
            for n, p in zip(self.shape, self.dims)]

    def _axis_rank(self, axis: int, coord: int) -> int:
        bounds = self._bounds[axis]
        for i in range(len(bounds) - 1):
            if bounds[i] <= coord < bounds[i + 1]:
                return i
        raise IndexError(
            f"coordinate {coord} outside axis {axis} of {self.shape}")

    def rank_of(self, i: int, j: int, k: int) -> int:
        """Owning rank of grid cell ``(i, j, k)``."""
        px, py, _ = self.dims
        bi = self._axis_rank(0, i)
        bj = self._axis_rank(1, j)
        bk = self._axis_rank(2, k)
        return bi + px * (bj + py * bk)

    def rank_map(self) -> np.ndarray:
        """Dense (nx, ny, nz) array of owning ranks."""
        out = np.empty(self.shape, dtype=np.int64)
        for i in range(self.shape[0]):
            for j in range(self.shape[1]):
                for k in range(self.shape[2]):
                    out[i, j, k] = self.rank_of(i, j, k)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CartesianGridPartition(shape={self.shape}, "
                f"ranks={self.n_ranks}, dims={self.dims})")


@dataclass(frozen=True)
class Block:
    """One decomposition block: grid-index origin and extent."""

    origin: Tuple[int, int, int]
    extent: Tuple[int, int, int]

    @property
    def n_points(self) -> int:
        """Voxels inside the block."""
        ex, ey, ez = self.extent
        return ex * ey * ez

    def surface_points(self, radius: int = 1) -> int:
        """Ghost-layer size: points within ``radius`` outside the block
        that a ``radius``-stencil on the block must read (clamped halo
        of thickness ``radius`` on all six faces, edges and corners)."""
        ex, ey, ez = self.extent
        padded = (ex + 2 * radius) * (ey + 2 * radius) * (ez + 2 * radius)
        return padded - self.n_points


class BlockDecomposition:
    """Cut a volume into a regular block grid and assign blocks to ranks.

    Parameters
    ----------
    shape : (nx, ny, nz)
        Volume extent; must divide evenly by ``block``.
    block : int or (bx, by, bz)
        Block edge length(s).
    n_ranks : int
        Number of ranks; blocks are dealt out in ``order`` sequence in
        contiguous runs of ``n_blocks // n_ranks`` (remainder spread over
        the first ranks), so each rank owns a contiguous curve segment.
    order : {"scan", "morton", "hilbert"}
        Block enumeration order.  ``scan`` yields slab-ish partitions;
        the curve orders yield compact, cube-ish ones.
    """

    def __init__(self, shape: Sequence[int], block, n_ranks: int,
                 order: str = "morton"):
        self.shape = tuple(int(s) for s in shape)
        if isinstance(block, int):
            block = (block, block, block)
        self.block = tuple(int(b) for b in block)
        if any(s % b for s, b in zip(self.shape, self.block)):
            raise ValueError(
                f"shape {self.shape} not divisible by block {self.block}")
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if order not in PARTITION_ORDERS:
            raise ValueError(
                f"order must be one of {PARTITION_ORDERS}, got {order!r}")
        self.n_ranks = n_ranks
        self.order = order
        self.grid = tuple(s // b for s, b in zip(self.shape, self.block))
        n_blocks = self.grid[0] * self.grid[1] * self.grid[2]
        if n_ranks > n_blocks:
            raise ValueError(
                f"{n_ranks} ranks exceed {n_blocks} blocks; use smaller blocks")
        self._block_coords = self._enumerate_blocks()
        self._rank_of = self._assign_ranks()

    # -- construction -----------------------------------------------------------

    def _enumerate_blocks(self) -> List[Tuple[int, int, int]]:
        gx, gy, gz = self.grid
        coords = [(bi, bj, bk)
                  for bk in range(gz) for bj in range(gy) for bi in range(gx)]
        if self.order == "scan":
            return coords
        if self.order == "morton":
            coords.sort(key=lambda c: int(morton_encode_3d(*c)))
            return coords
        side = max(self.grid)
        order_bits = max(1, (side - 1).bit_length())
        coords.sort(key=lambda c: int(hilbert_encode(c, order_bits)))
        return coords

    def _assign_ranks(self) -> Dict[Tuple[int, int, int], int]:
        n_blocks = len(self._block_coords)
        base, extra = divmod(n_blocks, self.n_ranks)
        rank_of = {}
        idx = 0
        for rank in range(self.n_ranks):
            count = base + (1 if rank < extra else 0)
            for _ in range(count):
                rank_of[self._block_coords[idx]] = rank
                idx += 1
        return rank_of

    # -- queries ------------------------------------------------------------------

    def rank_of_block(self, bi: int, bj: int, bk: int) -> int:
        """Owning rank of block grid coordinate ``(bi, bj, bk)``."""
        return self._rank_of[(bi, bj, bk)]

    def rank_of_voxel(self, i: int, j: int, k: int) -> int:
        """Owning rank of voxel ``(i, j, k)``."""
        bx, by, bz = self.block
        return self._rank_of[(i // bx, j // by, k // bz)]

    def blocks_of_rank(self, rank: int) -> List[Block]:
        """All blocks owned by ``rank``."""
        bx, by, bz = self.block
        return [
            Block(origin=(bi * bx, bj * by, bk * bz), extent=self.block)
            for (bi, bj, bk), r in self._rank_of.items() if r == rank
        ]

    def rank_map(self) -> np.ndarray:
        """Dense (gx, gy, gz) array of owning ranks, for tests/plots."""
        out = np.empty(self.grid, dtype=np.int64)
        for (bi, bj, bk), rank in self._rank_of.items():
            out[bi, bj, bk] = rank
        return out

    # -- metrics --------------------------------------------------------------------

    def load_balance(self) -> float:
        """Max rank voxel count / mean rank voxel count (1.0 = perfect)."""
        counts = np.bincount(
            [r for r in self._rank_of.values()], minlength=self.n_ranks
        ) * self.block[0] * self.block[1] * self.block[2]
        return float(counts.max() / counts.mean())

    def halo_bytes(self, radius: int, itemsize: int = 4) -> Dict[int, int]:
        """Per-rank ghost-exchange volume for a ``radius``-stencil sweep.

        A rank must receive every off-rank voxel within ``radius`` of a
        voxel it owns (volume-boundary voxels need no exchange).  This
        counts exactly those voxels, per receiving rank, times
        ``itemsize`` — the bytes entering each rank per halo exchange.
        """
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        nx, ny, nz = self.shape
        bx, by, bz = self.block
        received: Dict[int, set] = {r: set() for r in range(self.n_ranks)}
        # walk block faces only: interior voxels can't be in any halo
        for (bi, bj, bk), rank in self._rank_of.items():
            x0, y0, z0 = bi * bx, bj * by, bk * bz
            for i in range(x0 - radius, x0 + bx + radius):
                if not 0 <= i < nx:
                    continue
                inside_x = x0 <= i < x0 + bx
                for j in range(y0 - radius, y0 + by + radius):
                    if not 0 <= j < ny:
                        continue
                    inside_y = y0 <= j < y0 + by
                    for k in range(z0 - radius, z0 + bz + radius):
                        if not 0 <= k < nz:
                            continue
                        if inside_x and inside_y and z0 <= k < z0 + bz:
                            continue
                        if self.rank_of_voxel(i, j, k) != rank:
                            received[rank].add((i, j, k))
        return {r: len(pts) * itemsize for r, pts in received.items()}

    def total_halo_bytes(self, radius: int, itemsize: int = 4) -> int:
        """Sum of :meth:`halo_bytes` over ranks."""
        return sum(self.halo_bytes(radius, itemsize).values())

    def halo_matrix(self, radius: int, itemsize: int = 4
                    ) -> Dict[Tuple[int, int], int]:
        """Pairwise exchange volume: ``{(receiver, sender): bytes}``.

        The same ghost voxels as :meth:`halo_bytes`, attributed to the
        rank that owns (and therefore sends) each one.
        """
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        nx, ny, nz = self.shape
        bx, by, bz = self.block
        pair_voxels: Dict[Tuple[int, int], set] = {}
        for (bi, bj, bk), rank in self._rank_of.items():
            x0, y0, z0 = bi * bx, bj * by, bk * bz
            for i in range(x0 - radius, x0 + bx + radius):
                if not 0 <= i < nx:
                    continue
                inside_x = x0 <= i < x0 + bx
                for j in range(y0 - radius, y0 + by + radius):
                    if not 0 <= j < ny:
                        continue
                    inside_y = y0 <= j < y0 + by
                    for k in range(z0 - radius, z0 + bz + radius):
                        if not 0 <= k < nz:
                            continue
                        if inside_x and inside_y and z0 <= k < z0 + bz:
                            continue
                        sender = self.rank_of_voxel(i, j, k)
                        if sender != rank:
                            pair_voxels.setdefault((rank, sender),
                                                   set()).add((i, j, k))
        return {pair: len(pts) * itemsize
                for pair, pts in pair_voxels.items()}

    def voxels_of_rank(self, rank: int) -> int:
        """Voxels owned by ``rank``."""
        return sum(b.n_points for b in self.blocks_of_rank(rank))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockDecomposition(shape={self.shape}, block={self.block}, "
            f"ranks={self.n_ranks}, order={self.order!r})"
        )
