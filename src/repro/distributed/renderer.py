"""Distributed sort-last volume renderer (the paper's hybrid design).

Each simulated rank owns the sub-volume its decomposition assigns it,
renders the segments of every ray that cross its blocks — sampling on
the *global* ray parameterization, so distributed results match a
single-node render exactly — and the partials are composited with
direct-send (per-pixel depth sort, exact for any decomposition) or
binary-swap (for slab decompositions).  An alpha–beta model prices the
compositing traffic.

This closes the loop on the paper's own software stack: reference [18]
is exactly this hybrid (MPI compositing around the shared-memory
renderer the paper measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.grid import Grid
from ..kernels.camera import Camera, generate_rays
from ..kernels.sampling import sample_nearest, sample_trilinear
from ..kernels.transfer import TransferFunction
from ..kernels.volrend import RenderSpec, ray_box_intersect
from .compositing import composite_by_depth, direct_send_schedule
from .decomposition import BlockDecomposition
from .netmodel import CommModel, Message, schedule_time

__all__ = ["RankPartial", "DistributedRenderResult", "DistributedRenderer"]


@dataclass
class RankPartial:
    """One rank's compositing contribution.

    Attributes
    ----------
    rgba : (n_pixels, 4) premultiplied RGBA
        The rank's composited ray segments (zero where it has none).
    depth : (n_pixels,) float
        Entry depth of the rank's first sample per pixel (+inf if none).
    n_samples : int
        Samples the rank composited (its render load).
    """

    rgba: np.ndarray
    depth: np.ndarray
    n_samples: int


@dataclass
class DistributedRenderResult:
    """Final image plus per-rank load and communication cost."""

    image: np.ndarray
    partials: List[RankPartial]
    compositing_seconds: float
    samples_per_rank: List[int]

    @property
    def load_balance(self) -> float:
        """Max samples per rank / mean (1.0 = perfect)."""
        counts = np.asarray(self.samples_per_rank, dtype=np.float64)
        if counts.sum() == 0:
            return 1.0
        return float(counts.max() / counts.mean())


class DistributedRenderer:
    """Sort-last raycaster over a block decomposition.

    Parameters
    ----------
    grid : Grid
        The full volume (each rank conceptually holds only its blocks;
        the trace/memory modelling of rank-local rendering reuses the
        single-node machinery and is out of scope here — this class
        models the *distributed* concerns: decomposition, per-rank load,
        compositing correctness and communication cost).
    decomposition : BlockDecomposition
        Rank ownership of volume blocks.
    transfer : TransferFunction
    spec : RenderSpec, optional
        ``early_termination`` is ignored (sort-last compositing cannot
        terminate rays early across ranks).
    """

    def __init__(self, grid: Grid, decomposition: BlockDecomposition,
                 transfer: TransferFunction,
                 spec: Optional[RenderSpec] = None):
        if tuple(decomposition.shape) != tuple(grid.shape):
            raise ValueError(
                f"decomposition shape {decomposition.shape} != grid shape "
                f"{grid.shape}")
        self.grid = grid
        self.decomposition = decomposition
        self.transfer = transfer
        self.spec = spec or RenderSpec()
        shape = np.asarray(grid.shape, dtype=np.float64)
        self._lo = np.zeros(3)
        self._hi = shape - 1.0

    # -- global sample lattice ----------------------------------------------------

    def _global_samples(self, camera: Camera):
        """Global per-ray sample positions and validity (as the
        single-node renderer computes them)."""
        px, py = np.meshgrid(
            np.arange(camera.width), np.arange(camera.height), indexing="xy")
        origins, dirs = generate_rays(camera, px.ravel(), py.ravel())
        t_near, t_far = ray_box_intersect(origins, dirs, self._lo, self._hi)
        hit = t_far > t_near
        t_near = np.where(hit, t_near, 0.0)
        span = np.where(hit, t_far - t_near, 0.0)
        n_steps = np.minimum(
            np.ceil(span / self.spec.step).astype(np.int64),
            self.spec.max_steps)
        max_steps = int(n_steps.max()) if n_steps.size else 0
        s = np.arange(max(max_steps, 1), dtype=np.float64)
        t = t_near[:, None] + (s[None, :] + 0.5) * self.spec.step
        valid = s[None, :] < n_steps[:, None]
        t = np.where(valid, t, t_near[:, None])
        pts = origins[:, None, :] + t[:, :, None] * dirs[:, None, :]
        np.clip(pts, self._lo, self._hi, out=pts)
        return pts, valid, t

    def _rank_of_samples(self, pts: np.ndarray) -> np.ndarray:
        """Owning rank of each sample position (by nearest voxel)."""
        shape = self.grid.shape
        block = self.decomposition.block
        i = np.clip(np.rint(pts[..., 0]).astype(np.int64), 0, shape[0] - 1)
        j = np.clip(np.rint(pts[..., 1]).astype(np.int64), 0, shape[1] - 1)
        k = np.clip(np.rint(pts[..., 2]).astype(np.int64), 0, shape[2] - 1)
        bi, bj, bk = i // block[0], j // block[1], k // block[2]
        rank_map = self.decomposition.rank_map()
        return rank_map[bi, bj, bk]

    # -- per-rank rendering ----------------------------------------------------------

    def render_partials(self, camera: Camera) -> List[RankPartial]:
        """Each rank's composited segment image and entry depths."""
        spec = self.spec
        pts, valid, t = self._global_samples(camera)
        n_rays, max_steps, _ = pts.shape
        owner = self._rank_of_samples(pts)

        sampler = sample_nearest if spec.sampler == "nearest" else sample_trilinear
        flat_valid = valid.ravel()
        scalars = np.zeros(n_rays * max_steps)
        if flat_valid.any():
            values, _ = sampler(self.grid, pts.reshape(-1, 3)[flat_valid])
            scalars[flat_valid] = values
        scalars = scalars.reshape(n_rays, max_steps)
        rgba = self.transfer(scalars)
        alpha = 1.0 - np.power(1.0 - np.clip(rgba[..., 3], 0, 1), spec.step)

        partials = []
        for rank in range(self.decomposition.n_ranks):
            mine = valid & (owner == rank)
            a = np.where(mine, alpha, 0.0)
            color_acc = np.zeros((n_rays, 3))
            alpha_acc = np.zeros(n_rays)
            for s in range(max_steps):
                w = (1.0 - alpha_acc) * a[:, s]
                color_acc += w[:, None] * rgba[:, s, :3]
                alpha_acc += w
            seg = np.concatenate([color_acc, alpha_acc[:, None]], axis=1)
            depth = np.where(mine, t, np.inf).min(axis=1)
            partials.append(RankPartial(
                rgba=seg, depth=depth, n_samples=int(mine.sum())))
        return partials

    # -- end-to-end -----------------------------------------------------------------

    def render(self, camera: Camera, comm: Optional[CommModel] = None
               ) -> DistributedRenderResult:
        """Render, composite by direct-send, and price the traffic.

        The per-pixel depth sort makes the merge exact for any
        decomposition, including interleaved SFC partitions where ranks'
        segments alternate along a ray — each contiguous run of samples
        with one owner forms that rank's segment; sorting by entry depth
        reproduces the global front-to-back order as long as segments do
        not interleave *within* a pixel more than once per rank, which
        convex per-rank regions guarantee and which block-accurate
        ownership approximates well (tests pin the tolerance).
        """
        partials = self.render_partials(camera)
        image = composite_by_depth(
            [p.rgba for p in partials], [p.depth for p in partials])
        comm = comm or CommModel()
        image_bytes = partials[0].rgba.size * 4  # float32 RGBA on the wire
        rounds = direct_send_schedule(self.decomposition.n_ranks, image_bytes)
        return DistributedRenderResult(
            image=image,
            partials=partials,
            compositing_seconds=schedule_time(rounds, comm),
            samples_per_rank=[p.n_samples for p in partials],
        )
