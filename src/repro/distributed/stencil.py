"""Distributed stencil sweeps: bulk-synchronous compute + halo exchange.

Models the standard distributed-memory stencil loop the paper's
ecosystem runs at scale: each sweep, every rank updates its voxels
(compute phase) and then exchanges ghost layers with its neighbours
(communication phase, priced by the alpha–beta model).  The partition
*order* knob (scan slabs vs SFC) feeds straight into the DeFord-style
question: how much communication does a curve-ordered partition save,
and what does that do to parallel efficiency?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .decomposition import BlockDecomposition
from .netmodel import CommModel, Message, round_time

__all__ = ["StencilSweepCost", "simulate_stencil_sweeps", "scaling_study"]


@dataclass(frozen=True)
class StencilSweepCost:
    """Per-configuration timing of a bulk-synchronous stencil run.

    Attributes
    ----------
    compute_seconds : float
        Slowest rank's update time per sweep × sweeps.
    comm_seconds : float
        Halo-exchange time per sweep × sweeps (one message per
        neighbouring rank pair per sweep, all pairs concurrent).
    total_seconds : float
        Compute + communication (bulk-synchronous: phases don't overlap).
    max_rank_voxels : int
        The critical rank's load.
    halo_bytes_total : int
        Ghost bytes moved per sweep, summed over ranks.
    """

    compute_seconds: float
    comm_seconds: float
    total_seconds: float
    max_rank_voxels: int
    halo_bytes_total: int

    def efficiency_vs(self, single: "StencilSweepCost", n_ranks: int) -> float:
        """Parallel efficiency ``T1 / (P * TP)``."""
        return single.total_seconds / (n_ranks * self.total_seconds)


def simulate_stencil_sweeps(
    decomp: BlockDecomposition,
    radius: int = 1,
    sweeps: int = 1,
    itemsize: int = 4,
    comm: Optional[CommModel] = None,
    cycles_per_voxel: float = 20.0,
    freq_ghz: float = 2.4,
) -> StencilSweepCost:
    """Price ``sweeps`` bulk-synchronous stencil iterations on ``decomp``.

    ``cycles_per_voxel`` is the per-update compute weight (a radius-1
    7-point update costs ~10–30 cycles depending on the kernel); the
    communication phase sends each (receiver, sender) halo as one
    message per sweep.
    """
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")
    comm = comm or CommModel()
    max_voxels = max(decomp.voxels_of_rank(r) for r in range(decomp.n_ranks))
    compute_per_sweep = max_voxels * cycles_per_voxel / (freq_ghz * 1e9)
    matrix = decomp.halo_matrix(radius, itemsize) if decomp.n_ranks > 1 else {}
    messages = [Message(src=sender, dst=receiver, nbytes=nbytes)
                for (receiver, sender), nbytes in matrix.items()]
    comm_per_sweep = round_time(messages, comm)
    return StencilSweepCost(
        compute_seconds=compute_per_sweep * sweeps,
        comm_seconds=comm_per_sweep * sweeps,
        total_seconds=(compute_per_sweep + comm_per_sweep) * sweeps,
        max_rank_voxels=max_voxels,
        halo_bytes_total=sum(matrix.values()),
    )


def scaling_study(
    shape: Sequence[int],
    block,
    rank_counts: Sequence[int],
    orders: Sequence[str] = ("scan", "morton"),
    radius: int = 1,
    comm: Optional[CommModel] = None,
    **cost_kw,
) -> Dict[tuple, StencilSweepCost]:
    """Strong-scaling sweep: cost for every (order, rank count) pair."""
    out: Dict[tuple, StencilSweepCost] = {}
    for order in orders:
        for n_ranks in rank_counts:
            decomp = BlockDecomposition(shape, block, n_ranks, order=order)
            out[(order, n_ranks)] = simulate_stencil_sweeps(
                decomp, radius=radius, comm=comm, **cost_kw)
    return out
