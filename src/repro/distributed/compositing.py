"""Sort-last image compositing: the over operator, direct-send, binary-swap.

Distributed volume renderers are "sort-last": each rank renders its
sub-volume into a partial RGBA image (with per-pixel depth of its ray
segment), and the partials are combined with the associative *over*
operator in front-to-back depth order.  Two classic communication
schemes are provided:

* **direct-send** — every rank sends its full partial to a collector
  that sorts per pixel and composites.  Exact for any decomposition
  (per-pixel segment ordering), O(P) messages of full-image size.
* **binary-swap** (Ma et al.) — log2(P) rounds; in round r, paired
  ranks exchange complementary image halves and composite, ending with
  each rank owning 1/P of the final image.  Requires a global
  front-to-back rank order valid for all pixels (true for slab
  decompositions along the dominant view axis).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .netmodel import Message

__all__ = [
    "over",
    "composite_ordered",
    "composite_by_depth",
    "direct_send_schedule",
    "binary_swap_schedule",
    "binary_swap_composite",
]


def over(front: np.ndarray, back: np.ndarray) -> np.ndarray:
    """Porter–Duff *over* for premultiplied RGBA arrays (..., 4).

    ``out = front + (1 - front_alpha) * back`` — associative, which is
    what makes tree/swap compositing legal.
    """
    front = np.asarray(front, dtype=np.float64)
    back = np.asarray(back, dtype=np.float64)
    trans = 1.0 - front[..., 3:4]
    return front + trans * back


def composite_ordered(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Composite partial images given front-to-back, via repeated over."""
    if not partials:
        raise ValueError("need at least one partial image")
    out = np.asarray(partials[0], dtype=np.float64)
    for partial in partials[1:]:
        out = over(out, partial)
    return out


def composite_by_depth(partials: Sequence[np.ndarray],
                       depths: Sequence[np.ndarray]) -> np.ndarray:
    """Per-pixel depth-sorted compositing (the exact direct-send merge).

    Parameters
    ----------
    partials : sequence of (..., 4) images
        One premultiplied RGBA partial per rank.
    depths : sequence of (...) arrays
        Per-pixel segment entry depth for each partial; pixels a rank
        does not cover should carry ``+inf`` (their RGBA must be 0).
    """
    if len(partials) != len(depths):
        raise ValueError("need one depth map per partial")
    stack = np.stack([np.asarray(p, dtype=np.float64) for p in partials])
    dstack = np.stack([np.asarray(d, dtype=np.float64) for d in depths])
    order = np.argsort(dstack, axis=0, kind="stable")
    sorted_stack = np.take_along_axis(stack, order[..., None], axis=0)
    out = sorted_stack[0]
    for n in range(1, sorted_stack.shape[0]):
        out = over(out, sorted_stack[n])
    return out


def direct_send_schedule(n_ranks: int, image_bytes: int,
                         collector: int = 0) -> List[List[Message]]:
    """One round: every non-collector rank sends its partial to the collector."""
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    round_msgs = [
        Message(src=r, dst=collector, nbytes=image_bytes)
        for r in range(n_ranks) if r != collector
    ]
    return [round_msgs] if round_msgs else []


def binary_swap_schedule(n_ranks: int, image_bytes: int) -> List[List[Message]]:
    """log2(P) rounds of pairwise half-image exchanges.

    Round r pairs ranks differing in bit r; each partner sends half of
    its current region, so message size halves every round.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks & (n_ranks - 1):
        raise ValueError(f"binary swap requires a power-of-two rank count, "
                         f"got {n_ranks}")
    rounds: List[List[Message]] = []
    chunk = image_bytes // 2
    stride = 1
    while stride < n_ranks:
        msgs = []
        for r in range(n_ranks):
            partner = r ^ stride
            msgs.append(Message(src=r, dst=partner, nbytes=chunk))
        rounds.append(msgs)
        chunk //= 2
        stride <<= 1
    return rounds


def binary_swap_composite(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Execute binary swap functionally and return the gathered image.

    ``partials`` must be in global front-to-back order (slab
    decomposition).  Each partial is a flat (n_pixels, 4) premultiplied
    RGBA image.  The simulation performs the actual region splitting and
    pairwise compositing, then gathers the final regions — so tests can
    check it against :func:`composite_ordered` bit for bit.
    """
    n_ranks = len(partials)
    if n_ranks & (n_ranks - 1):
        raise ValueError("binary swap requires a power-of-two rank count")
    images = [np.asarray(p, dtype=np.float64).copy() for p in partials]
    n_pixels = images[0].shape[0]
    # regions[r] = (start, stop) of the image slice rank r still owns
    regions = [(0, n_pixels)] * n_ranks
    stride = 1
    while stride < n_ranks:
        new_images = [None] * n_ranks
        new_regions = [None] * n_ranks
        for r in range(n_ranks):
            partner = r ^ stride
            start, stop = regions[r]
            mid = (start + stop) // 2
            # the lower-ranked partner keeps the first half
            keep = (start, mid) if r < partner else (mid, stop)
            ks, ke = keep
            mine = images[r][ks - start:ke - start]
            theirs = images[partner][ks - regions[partner][0]:
                                     ke - regions[partner][0]]
            # partner order == depth order (partials are front-to-back)
            if r < partner:
                new_images[r] = over(mine, theirs)
            else:
                new_images[r] = over(theirs, mine)
            new_regions[r] = keep
        images = new_images
        regions = new_regions
        stride <<= 1
    out = np.zeros((n_pixels, 4), dtype=np.float64)
    for r in range(n_ranks):
        start, stop = regions[r]
        out[start:stop] = images[r]
    return out
