"""Interconnect cost model for the distributed extension.

The classic alpha–beta (latency–bandwidth) model: a message of ``n``
bytes costs ``alpha + n / bandwidth`` seconds.  Compositing schedules
are expressed as rounds of concurrent messages; a round costs its
slowest message, and a schedule costs the sum of its rounds — the
standard way binary-swap vs direct-send trade-offs are analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["CommModel", "Message", "round_time", "schedule_time"]


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer: source rank, destination rank, bytes."""

    src: int
    dst: int
    nbytes: int

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")


@dataclass(frozen=True)
class CommModel:
    """Alpha–beta interconnect parameters.

    Attributes
    ----------
    latency_s : float
        Per-message startup cost (alpha).
    bandwidth_Bps : float
        Point-to-point bandwidth in bytes/second (1/beta).
    """

    latency_s: float = 2e-6
    bandwidth_Bps: float = 6e9

    def __post_init__(self):
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be positive")

    def message_time(self, nbytes: int) -> float:
        """Alpha + bytes/bandwidth."""
        return self.latency_s + nbytes / self.bandwidth_Bps


def round_time(messages: Sequence[Message], model: CommModel) -> float:
    """Cost of one round of concurrent messages.

    Each rank sends and receives concurrently across distinct partners;
    the round finishes when the busiest *endpoint* does, so the cost is
    the max over ranks of the serialized traffic at that endpoint.
    """
    if not messages:
        return 0.0
    per_endpoint: dict = {}
    for m in messages:
        per_endpoint[m.src] = per_endpoint.get(m.src, 0.0) + model.message_time(m.nbytes)
        per_endpoint[m.dst] = per_endpoint.get(m.dst, 0.0) + model.message_time(m.nbytes)
    return max(per_endpoint.values())


def schedule_time(rounds: Sequence[Sequence[Message]], model: CommModel) -> float:
    """Total cost of a multi-round schedule (rounds are barriers)."""
    return sum(round_time(r, model) for r in rounds)
