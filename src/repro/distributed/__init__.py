"""Distributed-memory extension: the MPI half of the paper's hybrid renderer.

Block decomposition of the volume over ranks (scan/Morton/Hilbert
orders), halo-exchange accounting for stencil sweeps (the DeFord &
Kalyanaraman cite), sort-last image compositing (direct-send and
binary-swap) with an alpha–beta communication model, and a
:class:`DistributedRenderer` whose output matches the single-node
raycaster.
"""

from .compositing import (
    binary_swap_composite,
    binary_swap_schedule,
    composite_by_depth,
    composite_ordered,
    direct_send_schedule,
    over,
)
from .decomposition import (
    PARTITION_ORDERS,
    Block,
    BlockDecomposition,
    CartesianGridPartition,
    process_grid,
)
from .netmodel import CommModel, Message, round_time, schedule_time
from .renderer import DistributedRenderer, DistributedRenderResult, RankPartial
from .stencil import StencilSweepCost, scaling_study, simulate_stencil_sweeps

__all__ = [
    "Block",
    "BlockDecomposition",
    "CartesianGridPartition",
    "CommModel",
    "DistributedRenderResult",
    "DistributedRenderer",
    "Message",
    "PARTITION_ORDERS",
    "RankPartial",
    "StencilSweepCost",
    "binary_swap_composite",
    "binary_swap_schedule",
    "composite_by_depth",
    "composite_ordered",
    "direct_send_schedule",
    "over",
    "process_grid",
    "round_time",
    "scaling_study",
    "schedule_time",
    "simulate_stencil_sweeps",
]
