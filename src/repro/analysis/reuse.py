"""Exact LRU reuse-distance (stack-distance) analysis.

The reuse distance of an access is the number of *distinct* lines
touched since the previous access to the same line; under a fully
associative LRU cache of capacity C lines, an access hits iff its reuse
distance is < C.  The histogram therefore characterizes a stream's
cache behaviour for *every* capacity at once — the cleanest way to see
why a Z-order stream outperforms an array-order stream for neighborhood
workloads.

Two implementations: a quadratic reference (``method="stack"``) and a
Bennett–Kruskal binary-indexed-tree version (``method="bit"``,
O(n log n)) for real traces.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "reuse_distance_histogram",
    "miss_ratio_curve",
    "INFINITE_DISTANCE",
]

#: Histogram key for cold (first-touch) accesses.
INFINITE_DISTANCE = -1


def _reuse_stack(lines: Sequence[int]) -> Counter:
    """Reference O(n·d) stack simulation."""
    stack: list = []
    hist: Counter = Counter()
    for ln in lines:
        try:
            depth = stack.index(ln)
        except ValueError:
            hist[INFINITE_DISTANCE] += 1
            stack.insert(0, ln)
        else:
            hist[depth] += 1
            del stack[depth]
            stack.insert(0, ln)
    return hist


class _BIT:
    """Binary indexed tree over positions, counting marked entries."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of marks at positions 0..i inclusive."""
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s


def _reuse_bit(lines: Sequence[int]) -> Counter:
    """Bennett–Kruskal: mark each line's latest position in a BIT.

    At access t to line x last seen at position p, the reuse distance is
    the number of marked positions strictly between p and t — each mark
    is the latest occurrence of some distinct line.
    """
    hist: Counter = Counter()
    last: Dict[int, int] = {}
    bit = _BIT(len(lines))
    for t, ln in enumerate(lines):
        p = last.get(ln)
        if p is None:
            hist[INFINITE_DISTANCE] += 1
        else:
            distance = bit.prefix(t - 1) - bit.prefix(p)
            hist[distance] += 1
            bit.add(p, -1)
        bit.add(t, 1)
        last[ln] = t
    return hist


def reuse_distance_histogram(lines: Iterable[int],
                             method: str = "bit") -> Dict[int, int]:
    """Histogram {reuse distance: count}; cold misses keyed by −1.

    ``method`` is ``"bit"`` (O(n log n), default) or ``"stack"`` (the
    quadratic reference used to validate it).
    """
    seq = [int(x) for x in np.asarray(list(lines)).ravel()]
    if method == "stack":
        hist = _reuse_stack(seq)
    elif method == "bit":
        hist = _reuse_bit(seq)
    else:
        raise ValueError(f"unknown method {method!r}")
    return dict(hist)


def miss_ratio_curve(hist: Dict[int, int],
                     capacities: Sequence[int]) -> np.ndarray:
    """Fully-associative-LRU miss ratio at each capacity (in lines).

    An access with reuse distance d misses a cache of capacity c iff
    d >= c (cold accesses always miss).
    """
    total = sum(hist.values())
    if total == 0:
        return np.zeros(len(capacities))
    distances = np.array(
        [d for d in hist if d != INFINITE_DISTANCE], dtype=np.int64
    )
    counts = np.array(
        [hist[d] for d in hist if d != INFINITE_DISTANCE], dtype=np.int64
    )
    cold = hist.get(INFINITE_DISTANCE, 0)
    out = np.empty(len(capacities), dtype=np.float64)
    for n, c in enumerate(capacities):
        out[n] = (counts[distances >= c].sum() + cold) / total
    return out
