"""Exact LRU reuse-distance (stack-distance) analysis.

The reuse distance of an access is the number of *distinct* lines
touched since the previous access to the same line; under a fully
associative LRU cache of capacity C lines, an access hits iff its reuse
distance is < C.  The histogram therefore characterizes a stream's
cache behaviour for *every* capacity at once — the cleanest way to see
why a Z-order stream outperforms an array-order stream for neighborhood
workloads.

Three implementations: a quadratic reference (``method="stack"``), a
Bennett–Kruskal binary-indexed-tree version (``method="bit"``,
O(n log n) but per-access Python), and the fully numpy-vectorized
engine behind the simulator's ``stack`` replay backend
(``method="vectorized"``, see :mod:`repro.memsim.stackdist`) for
multi-million-access traces.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence, Union

import numpy as np

__all__ = [
    "reuse_distance_histogram",
    "miss_ratio_curve",
    "INFINITE_DISTANCE",
]

#: Histogram key for cold (first-touch) accesses.
INFINITE_DISTANCE = -1


def _reuse_stack(lines: Sequence[int]) -> Counter:
    """Reference O(n·d) stack simulation."""
    stack: list = []
    hist: Counter = Counter()
    for ln in lines:
        try:
            depth = stack.index(ln)
        except ValueError:
            hist[INFINITE_DISTANCE] += 1
            stack.insert(0, ln)
        else:
            hist[depth] += 1
            del stack[depth]
            stack.insert(0, ln)
    return hist


class _BIT:
    """Binary indexed tree over positions, counting marked entries."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of marks at positions 0..i inclusive."""
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s


def _reuse_bit(lines: Sequence[int]) -> Counter:
    """Bennett–Kruskal: mark each line's latest position in a BIT.

    At access t to line x last seen at position p, the reuse distance is
    the number of marked positions strictly between p and t — each mark
    is the latest occurrence of some distinct line.
    """
    hist: Counter = Counter()
    last: Dict[int, int] = {}
    bit = _BIT(len(lines))
    for t, ln in enumerate(lines):
        p = last.get(ln)
        if p is None:
            hist[INFINITE_DISTANCE] += 1
        else:
            distance = bit.prefix(t - 1) - bit.prefix(p)
            hist[distance] += 1
            bit.add(p, -1)
        bit.add(t, 1)
        last[ln] = t
    return hist


def _as_sequence(lines: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
    """One flat int64 view/array of the stream — no triple copy.

    An integer ndarray passes through as (at most) a flattened cast; a
    list or generator is materialized exactly once.  The reference
    ``stack``/``bit`` paths then iterate this array directly instead of
    building a second Python list of boxed ints.
    """
    arr = lines if isinstance(lines, np.ndarray) else np.asarray(list(lines))
    if arr.dtype.kind not in "iu":
        if arr.size and not np.issubdtype(arr.dtype, np.number):
            raise TypeError(f"line stream must be integer, got {arr.dtype}")
        arr = arr.astype(np.int64)
    return arr.ravel()


def reuse_distance_histogram(lines: Union[np.ndarray, Iterable[int]],
                             method: str = "bit") -> Dict[int, int]:
    """Histogram {reuse distance: count}; cold misses keyed by −1.

    ``lines`` may be any iterable of ints or — preferred for real traces
    — an integer ndarray, which is analyzed without copying the stream.
    ``method`` is ``"bit"`` (O(n log n), default), ``"vectorized"``
    (numpy single pass, fastest on large streams), or ``"stack"`` (the
    quadratic reference used to validate both).
    """
    seq = _as_sequence(lines)
    if method == "stack":
        hist = dict(_reuse_stack(seq.tolist()))
    elif method == "bit":
        hist = dict(_reuse_bit(seq.tolist()))
    elif method == "vectorized":
        # deferred: memsim.stackdist imports resilience; keep the cheap
        # analysis module import-light for the bit/stack paths
        from ..memsim.stackdist import stack_distance_histogram
        hist = stack_distance_histogram(seq).as_dict()
    else:
        raise ValueError(f"unknown method {method!r}")
    return hist


def miss_ratio_curve(hist: Dict[int, int],
                     capacities: Sequence[int]) -> np.ndarray:
    """Fully-associative-LRU miss ratio at each capacity (in lines).

    An access with reuse distance d misses a cache of capacity c iff
    d >= c (cold accesses always miss).  One sorted cumulative count
    answers every capacity by binary search — O((|hist| + |capacities|)
    log |hist|) instead of rescanning the histogram per capacity.
    """
    total = sum(hist.values())
    if total == 0:
        return np.zeros(len(capacities))
    finite = sorted(d for d in hist if d != INFINITE_DISTANCE)
    distances = np.array(finite, dtype=np.int64)
    counts = np.array([hist[d] for d in finite], dtype=np.int64)
    cold = hist.get(INFINITE_DISTANCE, 0)
    caps = np.asarray(list(capacities), dtype=np.int64)
    if counts.size == 0:  # all accesses cold: every capacity misses alike
        return np.full(caps.shape, cold / total, dtype=np.float64)
    cum = np.cumsum(counts)
    n_finite = int(cum[-1])
    idx = np.searchsorted(distances, caps, side="left")
    below = np.where(idx > 0, cum[np.maximum(idx - 1, 0)], 0)
    return (n_finite - below + cold) / total
