"""Set-pressure analysis: why strided streams conflict-miss.

A set-associative cache only delivers its nominal capacity if a stream
spreads across its sets.  Strided access — precisely what array order
produces for against-the-grain traversals — maps many distinct lines
onto few sets, so the *effective* capacity collapses to
``used_sets × ways``.  These metrics quantify that collapse for any
stream/geometry pair, explaining the oversized counter differences in
E3/E6 (see EXPERIMENTS.md "Threats to validity").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..memsim.cache import CacheConfig

__all__ = ["SetPressure", "set_pressure", "effective_capacity_fraction"]


@dataclass(frozen=True)
class SetPressure:
    """Distribution of a stream's distinct lines over a cache's sets.

    Attributes
    ----------
    n_sets : int
        Sets in the cache geometry.
    used_sets : int
        Sets touched by at least one distinct line of the stream.
    distinct_lines : int
        The stream's line footprint.
    max_lines_per_set, mean_lines_per_used_set : float
        Pressure statistics; a stream is conflict-prone when
        ``max_lines_per_set`` far exceeds the associativity.
    overflow_fraction : float
        Fraction of distinct lines beyond each set's ``ways`` capacity —
        the lines guaranteed to fight for residency even with perfect
        replacement.
    """

    n_sets: int
    used_sets: int
    distinct_lines: int
    max_lines_per_set: int
    mean_lines_per_used_set: float
    overflow_fraction: float


def set_pressure(lines: np.ndarray, config: CacheConfig) -> SetPressure:
    """Compute :class:`SetPressure` of a line-id stream under ``config``."""
    lines = np.unique(np.asarray(lines, dtype=np.int64))
    if lines.size == 0:
        return SetPressure(config.n_sets, 0, 0, 0, 0.0, 0.0)
    sets = lines & (config.n_sets - 1)
    counts = np.bincount(sets, minlength=config.n_sets)
    used = counts > 0
    overflow = np.maximum(counts - config.ways, 0).sum()
    return SetPressure(
        n_sets=config.n_sets,
        used_sets=int(used.sum()),
        distinct_lines=int(lines.size),
        max_lines_per_set=int(counts.max()),
        mean_lines_per_used_set=float(counts[used].mean()),
        overflow_fraction=float(overflow / lines.size),
    )


def effective_capacity_fraction(lines: np.ndarray,
                                config: CacheConfig) -> float:
    """Fraction of nominal capacity the stream can actually use.

    ``used_sets × ways / n_lines`` — 1.0 for a stream spread over every
    set, approaching ``1/n_sets`` for a pathologically strided one.
    """
    pressure = set_pressure(lines, config)
    if pressure.distinct_lines == 0:
        return 1.0
    return pressure.used_sets * config.ways / config.n_lines
