"""Stride spectra of kernel access streams under each layout.

The paper reasons about alignment in terms of ray slopes vs the
fastest-varying memory axis; the stride spectrum makes the same
argument quantitative for any stream: what fraction of consecutive
loads step by ±1 element, by ±one row, by ±one plane, by something
Z-order-small?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.locality import stride_histogram

__all__ = ["StrideSpectrum", "stride_spectrum", "compare_spectra"]


@dataclass(frozen=True)
class StrideSpectrum:
    """Bucketed view of a stream's consecutive-access strides.

    Buckets (in elements): ``same`` (0), ``unit`` (|Δ| = 1), ``line``
    (fits a cache line, |Δ| < line_elems), ``near`` (|Δ| < near_elems),
    ``far`` (the rest); fractions sum to 1.
    """

    same: float
    unit: float
    line: float
    near: float
    far: float
    n_strides: int

    def as_dict(self) -> Dict[str, float]:
        """Bucket fractions keyed by bucket name."""
        return {
            "same": self.same,
            "unit": self.unit,
            "line": self.line,
            "near": self.near,
            "far": self.far,
        }


def stride_spectrum(offsets: np.ndarray, line_elems: int = 16,
                    near_elems: int = 1024) -> StrideSpectrum:
    """Bucket the stride histogram of an element-offset stream."""
    hist = stride_histogram(offsets)
    total = sum(hist.values())
    if total == 0:
        return StrideSpectrum(0.0, 0.0, 0.0, 0.0, 0.0, 0)
    buckets = {"same": 0, "unit": 0, "line": 0, "near": 0, "far": 0}
    for delta, count in hist.items():
        mag = abs(delta)
        if mag == 0:
            buckets["same"] += count
        elif mag == 1:
            buckets["unit"] += count
        elif mag < line_elems:
            buckets["line"] += count
        elif mag < near_elems:
            buckets["near"] += count
        else:
            buckets["far"] += count
    return StrideSpectrum(
        same=buckets["same"] / total,
        unit=buckets["unit"] / total,
        line=buckets["line"] / total,
        near=buckets["near"] / total,
        far=buckets["far"] / total,
        n_strides=total,
    )


def compare_spectra(named_offsets: Dict[str, np.ndarray],
                    line_elems: int = 16,
                    near_elems: int = 1024) -> Dict[str, StrideSpectrum]:
    """Spectra for several named streams (e.g. one per layout)."""
    return {
        name: stride_spectrum(offs, line_elems, near_elems)
        for name, offs in named_offsets.items()
    }
