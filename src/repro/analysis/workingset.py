"""Denning working-set curves for access streams.

W(w) — the average number of distinct cache lines touched in a window
of w consecutive accesses — shows at a glance how much cache a stream
"wants".  A layout that keeps neighborhood work inside fewer lines has
a flatter curve, which is the cache-capacity face of the paper's
locality argument.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["working_set_curve", "footprint"]


def footprint(lines: np.ndarray) -> int:
    """Distinct lines in the whole stream."""
    lines = np.asarray(lines)
    return int(np.unique(lines).size) if lines.size else 0


def working_set_curve(lines: np.ndarray, window_sizes: Sequence[int],
                      max_windows: int = 64, seed: int = 0
                      ) -> Dict[int, float]:
    """Average distinct-line count over windows of each size.

    For each window size w, up to ``max_windows`` windows are sampled
    uniformly over the stream (all windows when few exist) and their
    distinct-line counts averaged.
    """
    lines = np.asarray(lines, dtype=np.int64)
    rng = np.random.default_rng(seed)
    out: Dict[int, float] = {}
    n = lines.size
    for w in window_sizes:
        w = int(w)
        if w <= 0:
            raise ValueError(f"window sizes must be positive, got {w}")
        if n == 0:
            out[w] = 0.0
            continue
        if w >= n:
            out[w] = float(np.unique(lines).size)
            continue
        n_starts = n - w + 1
        if n_starts <= max_windows:
            starts = np.arange(n_starts)
        else:
            starts = rng.choice(n_starts, size=max_windows, replace=False)
        counts = [np.unique(lines[s:s + w]).size for s in starts]
        out[w] = float(np.mean(counts))
    return out
