"""Analysis extensions: why the Z-order layout wins.

Reuse-distance histograms (cache behaviour at every capacity at once),
stride spectra (alignment of a stream with the layout), and Denning
working-set curves (how much cache a stream wants).
"""

from .conflicts import SetPressure, effective_capacity_fraction, set_pressure
from .reuse import INFINITE_DISTANCE, miss_ratio_curve, reuse_distance_histogram
from .strides import StrideSpectrum, compare_spectra, stride_spectrum
from .workingset import footprint, working_set_curve

__all__ = [
    "INFINITE_DISTANCE",
    "SetPressure",
    "StrideSpectrum",
    "compare_spectra",
    "effective_capacity_fraction",
    "set_pressure",
    "footprint",
    "miss_ratio_curve",
    "reuse_distance_histogram",
    "stride_spectrum",
    "working_set_curve",
]
