"""Thread → core placement (the paper's affinity knob).

The paper pins threads with the "compact" method on Ivy Bridge (up to 12
threads stay on one processor) and runs 1–4 hardware threads per core on
the MIC ({59, 118, 177, 236} threads over 59 usable cores).  Placement
matters to the simulation because it decides which threads share an L1
(SMT siblings), an L2 (MIC SMT), or an L3 (Ivy Bridge socket).
"""

from __future__ import annotations

from typing import List, Optional

from ..memsim.hierarchy import PlatformSpec

__all__ = ["compact_map", "scatter_map", "balanced_map", "make_affinity"]


def _check(n_threads: int, n_cores: int, smt: int) -> None:
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    if n_threads > n_cores * smt:
        raise ValueError(
            f"{n_threads} threads exceed capacity {n_cores} cores x {smt} SMT"
        )


def compact_map(n_threads: int, spec: PlatformSpec,
                usable_cores: Optional[int] = None) -> List[int]:
    """KMP_AFFINITY=compact: fill every SMT slot of a core before moving on.

    With smt == 1 (our Ivy Bridge model) this packs threads onto
    consecutive cores, so ≤12 threads stay on socket 0 — exactly the
    paper's setup.
    """
    cores = usable_cores if usable_cores is not None else spec.n_cores
    _check(n_threads, cores, spec.smt)
    return [t // spec.smt for t in range(n_threads)]


def scatter_map(n_threads: int, spec: PlatformSpec,
                usable_cores: Optional[int] = None) -> List[int]:
    """KMP_AFFINITY=scatter: round-robin over cores, then fill SMT slots."""
    cores = usable_cores if usable_cores is not None else spec.n_cores
    _check(n_threads, cores, spec.smt)
    return [t % cores for t in range(n_threads)]


def balanced_map(n_threads: int, spec: PlatformSpec,
                 usable_cores: Optional[int] = None) -> List[int]:
    """Spread threads evenly: thread t on core ``t % cores``.

    For the MIC's {59, 118, 177, 236} sweep this yields exactly 1, 2, 3,
    4 threads per usable core, matching the paper's description.
    """
    return scatter_map(n_threads, spec, usable_cores)


_MODES = {
    "compact": compact_map,
    "scatter": scatter_map,
    "balanced": balanced_map,
}


def make_affinity(mode: str, n_threads: int, spec: PlatformSpec,
                  usable_cores: Optional[int] = None) -> List[int]:
    """Thread→core map for a named mode (``compact``/``scatter``/``balanced``)."""
    try:
        fn = _MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown affinity mode {mode!r}; known: {sorted(_MODES)}"
        ) from None
    return fn(n_threads, spec, usable_cores)
