"""Pencil decomposition for the bilateral filter (Section III-A).

The paper parallelizes the filter by assigning a "pencil" of output
voxels — a width-, height-, or depth-row of the volume — to each thread,
round-robin.  ``px`` pencils run along x (width rows), ``pz`` along z
(depth rows); the choice interacts strongly with the layout, which is
one of the study's axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Pencil", "enumerate_pencils", "pencil_coords", "PENCIL_AXES",
           "PENCIL_ORDERS"]

#: Pencil enumeration orders: ``scan`` is the paper's nested-loop order;
#: ``morton`` and ``hilbert`` enumerate pencils along a space-filling
#: curve over their two fixed coordinates, so that round-robin threads
#: receive *spatially adjacent* pencils and share cache lines (the
#: traversal-order idea of the paper's Bader citation, applied to work
#: assignment — ablation A8).
PENCIL_ORDERS = ("scan", "morton", "hilbert")

#: Paper's pencil names → the axis the pencil runs along.
PENCIL_AXES = {"px": 0, "py": 1, "pz": 2}


@dataclass(frozen=True)
class Pencil:
    """A 1-D row of voxels along ``axis``, at fixed other coordinates.

    ``fixed`` holds the two constant coordinates in increasing-axis
    order (e.g. for ``axis == 0`` they are ``(j, k)``).
    """

    axis: int
    fixed: Tuple[int, int]

    def __post_init__(self):
        if self.axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {self.axis}")


def enumerate_pencils(shape: Sequence[int], axis: int,
                      order: str = "scan") -> List[Pencil]:
    """All pencils along ``axis``, enumerated in the given ``order``.

    ``scan`` (default, the paper's setup): nested-loop order with the
    lower-numbered fixed axis varying fastest — the order the paper's
    round-robin hands pencils to threads.  ``morton`` / ``hilbert``:
    space-filling-curve order over the two fixed coordinates.
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    if order not in PENCIL_ORDERS:
        raise ValueError(f"order must be one of {PENCIL_ORDERS}, got {order!r}")
    other = [a for a in range(3) if a != axis]
    lo_n = shape[other[0]]
    hi_n = shape[other[1]]
    pencils = [
        Pencil(axis=axis, fixed=(lo, hi))
        for hi in range(hi_n)
        for lo in range(lo_n)
    ]
    if order == "scan":
        return pencils
    if order == "morton":
        from ..core.morton import MortonLayout2D

        curve = MortonLayout2D((lo_n, hi_n))
    else:
        from ..core.hilbert import HilbertLayout2D

        curve = HilbertLayout2D((lo_n, hi_n))
    pencils.sort(key=lambda p: curve.index(p.fixed[0], p.fixed[1]))
    return pencils


def pencil_coords(pencil: Pencil, shape: Sequence[int]) -> tuple:
    """(i, j, k) arrays for all voxels of ``pencil``, in axis order."""
    n = shape[pencil.axis]
    run = np.arange(n, dtype=np.int64)
    other = [a for a in range(3) if a != pencil.axis]
    coords = [None, None, None]
    coords[pencil.axis] = run
    coords[other[0]] = np.full(n, pencil.fixed[0], dtype=np.int64)
    coords[other[1]] = np.full(n, pencil.fixed[1], dtype=np.int64)
    return coords[0], coords[1], coords[2]
