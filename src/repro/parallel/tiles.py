"""Image-tile decomposition for the volume renderer (Section III-B).

The output image is split into square tiles (32×32 in the paper, the
size that performed consistently well in Bethel & Howison 2012) and a
worker pool of threads grabs tiles dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

__all__ = ["Tile", "enumerate_tiles", "tile_pixels"]


@dataclass(frozen=True)
class Tile:
    """A rectangle of output pixels: origin ``(x0, y0)``, size ``(w, h)``."""

    x0: int
    y0: int
    w: int
    h: int

    @property
    def n_pixels(self) -> int:
        """Pixels covered by the tile."""
        return self.w * self.h


def enumerate_tiles(width: int, height: int, tile: int = 32) -> List[Tile]:
    """All tiles of an image, row-major, with clipped edge tiles."""
    if width <= 0 or height <= 0:
        raise ValueError(f"image size must be positive, got {width}x{height}")
    if tile <= 0:
        raise ValueError(f"tile size must be positive, got {tile}")
    tiles = []
    for y0 in range(0, height, tile):
        for x0 in range(0, width, tile):
            tiles.append(
                Tile(x0=x0, y0=y0, w=min(tile, width - x0), h=min(tile, height - y0))
            )
    return tiles


def tile_pixels(t: Tile, step: int = 1) -> tuple:
    """(px, py) pixel-coordinate arrays of a tile in row-major scan order.

    ``step`` subsamples pixels in both directions (used by the harness's
    ray-sampling mode; counts are extrapolated by ``step**2``).
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    xs = np.arange(t.x0, t.x0 + t.w, step, dtype=np.int64)
    ys = np.arange(t.y0, t.y0 + t.h, step, dtype=np.int64)
    py, px = np.meshgrid(ys, xs, indexing="ij")
    return px.ravel(), py.ravel()
