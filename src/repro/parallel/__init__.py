"""Simulated shared-memory parallelism: decomposition, scheduling, affinity.

The pthreads substitute: work is decomposed into pencils (filter) or
image tiles (renderer), assigned to simulated threads by a static
round-robin or an emulated dynamic worker pool, and threads are pinned
to cores with compact/scatter/balanced maps so they share exactly the
caches their hardware placement implies.
"""

from .affinity import balanced_map, compact_map, make_affinity, scatter_map
from .pencil import (
    PENCIL_AXES,
    PENCIL_ORDERS,
    Pencil,
    enumerate_pencils,
    pencil_coords,
)
from .scheduler import assignment_balance, dynamic_worker_pool, static_round_robin
from .threads import build_thread_works
from .tiles import Tile, enumerate_tiles, tile_pixels

__all__ = [
    "PENCIL_AXES",
    "PENCIL_ORDERS",
    "Pencil",
    "Tile",
    "assignment_balance",
    "balanced_map",
    "build_thread_works",
    "compact_map",
    "dynamic_worker_pool",
    "enumerate_pencils",
    "enumerate_tiles",
    "make_affinity",
    "pencil_coords",
    "scatter_map",
    "static_round_robin",
    "tile_pixels",
]
