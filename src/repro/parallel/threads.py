"""Assembly of per-thread simulation inputs.

Bridges the scheduler (which work item goes to which thread) and the
engine (one :class:`~repro.memsim.engine.ThreadWork` per thread): work
items are rendered to :class:`~repro.memsim.trace.TraceChunk` s by the
kernel, concatenated per thread in execution order, and bound to cores
via an affinity map.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, TypeVar

from ..memsim.engine import ThreadWork
from ..memsim.trace import TraceChunk, concat_chunks

__all__ = ["build_thread_works"]

T = TypeVar("T")


def build_thread_works(
    assignment: Dict[int, List[T]],
    render: Callable[[T], TraceChunk],
    affinity: Sequence[int],
) -> List[ThreadWork]:
    """Render each thread's items to one merged trace, bound to its core.

    Parameters
    ----------
    assignment : dict
        thread id → list of work items, from a scheduler.
    render : callable
        Work item → :class:`TraceChunk` (the kernel's stream generator).
    affinity : sequence of int
        thread id → core id; must cover every thread in ``assignment``.
    """
    works: List[ThreadWork] = []
    for tid in sorted(assignment):
        if tid >= len(affinity):
            raise ValueError(
                f"thread {tid} has no core in affinity map of length {len(affinity)}"
            )
        chunks = [render(item) for item in assignment[tid]]
        works.append(
            ThreadWork(thread_id=tid, core=affinity[tid], chunk=concat_chunks(chunks))
        )
    return works
