"""Work-assignment strategies (the paper's two schedulers).

* The bilateral filter hands pencils to threads **round-robin**
  (static): pencil ``i`` goes to thread ``i mod n_threads``.
* The raycaster uses a **dynamic worker pool**: a thread grabs the next
  tile from a shared queue when it finishes its current one.  We emulate
  the pool deterministically with a greedy least-loaded assignment using
  each item's known cost (its access count), which is exactly what a
  work queue converges to when per-item costs are accurate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, TypeVar

__all__ = ["static_round_robin", "dynamic_worker_pool", "assignment_balance"]

T = TypeVar("T")


def static_round_robin(items: Sequence[T], n_threads: int) -> Dict[int, List[T]]:
    """Round-robin static assignment: item ``i`` → thread ``i % n_threads``.

    Every thread gets an entry (possibly empty) so downstream code can
    rely on the dict having exactly ``n_threads`` keys.
    """
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    out: Dict[int, List[T]] = {t: [] for t in range(n_threads)}
    for idx, item in enumerate(items):
        out[idx % n_threads].append(item)
    return out


def dynamic_worker_pool(items: Sequence[T], n_threads: int,
                        cost: Callable[[T], float]) -> Dict[int, List[T]]:
    """Emulated worker pool: queue order preserved, next item to idlest thread.

    A min-heap of (accumulated cost, thread id) picks the thread that
    would become free first; ties break toward lower thread ids, making
    the emulation deterministic.
    """
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    out: Dict[int, List[T]] = {t: [] for t in range(n_threads)}
    heap = [(0.0, t) for t in range(n_threads)]
    heapq.heapify(heap)
    for item in items:
        load, t = heapq.heappop(heap)
        out[t].append(item)
        heapq.heappush(heap, (load + float(cost(item)), t))
    return out


def assignment_balance(assignment: Dict[int, List[T]],
                       cost: Callable[[T], float]) -> float:
    """Load imbalance of an assignment: max thread load / mean load.

    1.0 is perfect balance; empty assignments return 1.0.
    """
    loads = [sum(cost(i) for i in items) for items in assignment.values()]
    if not loads or sum(loads) == 0:
        return 1.0
    mean = sum(loads) / len(loads)
    return max(loads) / mean
