"""Resilient experiment execution (see docs/RESILIENCE.md).

Long sweeps die for boring reasons — a preempted node, an OOM-killed
worker, a wedged process, a full disk — and the paper's result matrices
are exactly the hours-long cell batches that cannot afford to restart
from zero.  This package is the recovery layer the execution stack
(:mod:`repro.experiments.parallel`, the sweeps, the figure drivers and
the CLI) runs on:

* :mod:`~repro.resilience.artifacts` — the durability layer: one atomic
  write primitive (temp + fsync + ``os.replace``) for every artifact,
  sidecar integrity records (SHA-256 + length + schema version),
  verification on read, and quarantine of anything corrupt — a damaged
  artifact becomes a loud error and a ``.corrupt`` file, never a wrong
  row;
* :mod:`~repro.resilience.checkpoint` — an append-only JSON-lines
  journal of completed cell results keyed by ``config_hash``, flushed
  after every cell, with per-record checksums (schema v2) and
  :func:`~repro.resilience.checkpoint.migrate_journal` for older
  journals, so an interrupted run resumes by re-executing only the
  missing cells;
* :mod:`~repro.resilience.policy` — retry classification (transient vs
  permanent vs memory-pressure errors) and deterministic exponential
  backoff;
* :mod:`~repro.resilience.pool` — a supervised worker pool that can
  reap a hung worker on a per-cell timeout, requeue the cell without
  losing the rest of the batch, and cap worker address space
  (``RLIMIT_AS``) so runaway cells fail in-band;
* :mod:`~repro.resilience.governor` — resource governance: preflight
  admission control (memory / disk estimates clamp the worker count)
  and the degradation ladder (fewer workers → no trace capture → keep
  results) for batches under memory pressure;
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness (crash / raise / hang / corrupt / oom at a chosen cell index;
  enospc / eio / torn / bitflip at a chosen durable-write index) used
  by the tests and the CI chaos-smoke job to prove the above actually
  recovers;
* :mod:`~repro.resilience.validate` — worker-payload validation so a
  corrupted result becomes a failure, never a silently wrong row.
"""

from .artifacts import (
    ArtifactIntegrityError,
    atomic_write_bytes,
    atomic_write_text,
    quarantine_artifact,
    read_artifact,
    read_sidecar,
    sidecar_path,
    verify_artifact,
    write_artifact,
    write_text_artifact,
)
from .checkpoint import (
    CheckpointStore,
    decode_result,
    encode_result,
    migrate_journal,
)
from .faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_faults,
    install_faults,
    parse_faults,
)
from .governor import Admission, Governor
from .policy import RetryPolicy, classify_error, memory_pressure
from .pool import JobOutcome, SupervisedPool
from .validate import validate_outcome

__all__ = [
    "Admission",
    "ArtifactIntegrityError",
    "CheckpointStore",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "Governor",
    "InjectedFault",
    "JobOutcome",
    "RetryPolicy",
    "SupervisedPool",
    "active_plan",
    "atomic_write_bytes",
    "atomic_write_text",
    "classify_error",
    "clear_faults",
    "decode_result",
    "encode_result",
    "install_faults",
    "memory_pressure",
    "migrate_journal",
    "parse_faults",
    "quarantine_artifact",
    "read_artifact",
    "read_sidecar",
    "sidecar_path",
    "verify_artifact",
    "write_artifact",
    "write_text_artifact",
]
