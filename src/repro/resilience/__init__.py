"""Resilient experiment execution (see docs/RESILIENCE.md).

Long sweeps die for boring reasons — a preempted node, an OOM-killed
worker, a wedged process — and the paper's result matrices are exactly
the hours-long cell batches that cannot afford to restart from zero.
This package is the recovery layer the execution stack
(:mod:`repro.experiments.parallel`, the sweeps, the figure drivers and
the CLI) runs on:

* :mod:`~repro.resilience.checkpoint` — an append-only JSON-lines
  journal of completed cell results keyed by ``config_hash``, flushed
  after every cell, so an interrupted run resumes by re-executing only
  the missing cells;
* :mod:`~repro.resilience.policy` — retry classification (transient vs
  permanent errors) and deterministic exponential backoff;
* :mod:`~repro.resilience.pool` — a supervised worker pool that can
  reap a hung worker on a per-cell timeout and requeue the cell without
  losing the rest of the batch;
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness (crash / raise / hang / corrupt at a chosen cell index) used
  by the tests and the CI chaos-smoke job to prove the above actually
  recovers;
* :mod:`~repro.resilience.validate` — worker-payload validation so a
  corrupted result becomes a failure, never a silently wrong row.
"""

from .checkpoint import CheckpointStore, decode_result, encode_result
from .faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_faults,
    install_faults,
    parse_faults,
)
from .policy import RetryPolicy, classify_error
from .pool import JobOutcome, SupervisedPool
from .validate import validate_outcome

__all__ = [
    "CheckpointStore",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "JobOutcome",
    "RetryPolicy",
    "SupervisedPool",
    "active_plan",
    "classify_error",
    "clear_faults",
    "decode_result",
    "encode_result",
    "install_faults",
    "parse_faults",
    "validate_outcome",
]
