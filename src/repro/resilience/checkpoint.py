"""Checkpoint journal: completed cells survive a dead parent process.

The store is an append-only JSON-lines file with one record per
completed cell, keyed by the cell's ``config_hash`` (the same stable
hash the run manifest records, so a checkpoint entry and a manifest
cell cross-reference for free).  Records are flushed **and fsynced**
after every cell: when the parent is SIGKILLed mid-batch, everything
that finished is on disk, and the crash window can at worst leave one
*truncated trailing line*, which :meth:`CheckpointStore.load` detects
and drops (the affected cell simply re-runs).

Keying by config hash rather than batch position means a resumed run
does not need the same cell *ordering* — any batch containing a cell
with the same full parameter set reuses its result — and two identical
cells in one batch share one journal entry.

A sibling ``<journal>.quarantine.jsonl`` receives payloads that failed
schema validation (see :mod:`repro.resilience.validate`): corrupt
results are never replayed into a resumed run, but they are kept for
post-mortem instead of vanishing.

Since schema version 2 every record carries a SHA-256 over its own
content, so corruption *anywhere* in the journal — a flipped bit in a
year-old record, not just a torn tail — is detected on load: the
corrupt record is quarantined (described in the quarantine file, never
decoded into a resumed run) and its cell simply re-runs.  Version-1
journals load unchanged (the records are trusted, as they always were)
and :func:`migrate_journal` rewrites one in place under the current
schema with fresh checksums.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from . import artifacts as _artifacts

__all__ = ["CheckpointStore", "encode_result", "decode_result",
           "migrate_journal", "CHECKPOINT_SCHEMA_VERSION"]

#: bumped whenever the journal record layout changes incompatibly
CHECKPOINT_SCHEMA_VERSION = 2

#: schema versions load() can still consume (v1: pre-checksum records)
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


def _record_digest(rec: Dict[str, Any]) -> str:
    """Canonical content hash of a journal record (sans its own sha).

    ``json.loads`` → ``json.dumps(sort_keys=True)`` is a stable
    canonicalization: floats re-serialize via shortest-repr, so a
    record read back hashes identically to the one written.
    """
    return hashlib.sha256(
        json.dumps(rec, sort_keys=True, default=str).encode()).hexdigest()


def _plain(value):
    """Coerce numpy scalars to plain Python so json round-trips exactly."""
    item = getattr(value, "item", None)
    return item() if callable(item) else value


def encode_result(result) -> Dict[str, Any]:
    """A :class:`~repro.experiments.harness.CellResult` as a JSON-safe dict.

    Floats survive JSON exactly (shortest-repr round-trip), so a decoded
    result compares equal to the live one.
    """
    sim = result.sim
    return {
        "runtime_seconds": _plain(result.runtime_seconds),
        "counters": {k: _plain(v) for k, v in result.counters.items()},
        "n_threads_simulated": _plain(result.n_threads_simulated),
        "wall_seconds": _plain(result.wall_seconds),
        "sim": {
            "counters": {k: _plain(v) for k, v in sim.counters.items()},
            "level_served": {k: _plain(v) for k, v in sim.level_served.items()},
            "runtime_seconds": _plain(sim.runtime_seconds),
            "per_thread_cycles": {str(k): _plain(v)
                                  for k, v in sim.per_thread_cycles.items()},
            "n_accesses": _plain(sim.n_accesses),
            "count_scale": _plain(sim.count_scale),
            "work_scale": _plain(sim.work_scale),
        },
    }


def decode_result(doc: Dict[str, Any]):
    """Rebuild a :class:`CellResult` from :func:`encode_result` output."""
    from ..experiments.harness import CellResult
    from ..memsim.engine import SimResult

    sim_doc = doc["sim"]
    sim = SimResult(
        counters=dict(sim_doc["counters"]),
        level_served=dict(sim_doc["level_served"]),
        runtime_seconds=sim_doc["runtime_seconds"],
        per_thread_cycles={int(k): v
                           for k, v in sim_doc["per_thread_cycles"].items()},
        n_accesses=sim_doc["n_accesses"],
        count_scale=sim_doc["count_scale"],
        work_scale=sim_doc["work_scale"],
    )
    return CellResult(
        runtime_seconds=doc["runtime_seconds"],
        counters=dict(doc["counters"]),
        sim=sim,
        n_threads_simulated=doc["n_threads_simulated"],
        wall_seconds=doc.get("wall_seconds", 0.0),
    )


class CheckpointStore:
    """Append-only journal of completed cell results.

    Parameters
    ----------
    path : str
        Journal file location.  Created on first :meth:`record`; a
        missing file loads as an empty store.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self.quarantine_path = self.path + ".quarantine.jsonl"
        self._fh = None
        #: journal appends that failed (ENOSPC/EIO) — the run keeps its
        #: in-memory results; only resume coverage shrinks
        self.write_errors = 0
        #: filled by :meth:`load`: records / migrated / corrupt /
        #: dropped_lines counts of the last load
        self.load_stats: Dict[str, int] = {}

    # -- reading ------------------------------------------------------------

    def load(self, *, quarantine_corrupt: bool = True) -> Dict[str, Any]:
        """Completed results by config hash; corruption-tolerant.

        Unparseable lines (a torn tail, or a mid-journal record torn by
        a disk fault) are dropped; parseable records with a bad
        checksum, unknown schema version, or undecodable payload are
        **quarantined** (described in the quarantine file, when
        ``quarantine_corrupt``).  Either way the affected cell simply
        re-runs — a corrupt record is never decoded into a resumed run.
        Version-1 records (pre-checksum) load unchanged.
        """
        completed: Dict[str, Any] = {}
        stats = {"records": 0, "migrated": 0, "corrupt": 0,
                 "dropped_lines": 0}
        self.load_stats = stats
        if not os.path.exists(self.path):
            return completed

        def reject(lineno: int, problem: str) -> None:
            stats["corrupt"] += 1
            if quarantine_corrupt:
                self.quarantine({"journal": self.path, "line": lineno,
                                 "problem": problem})

        with open(self.path) as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    stats["dropped_lines"] += 1
                    continue  # torn line: drop, cell re-runs
                if not isinstance(rec, dict):
                    stats["dropped_lines"] += 1
                    continue
                version = rec.get("schema_version")
                if version not in SUPPORTED_SCHEMA_VERSIONS:
                    reject(lineno, f"unknown schema_version {version!r}")
                    continue
                if version >= 2:
                    claimed = rec.pop("sha256", None)
                    if claimed != _record_digest(rec):
                        reject(lineno, "record checksum mismatch "
                                       f"(claimed {str(claimed)[:12]}…)")
                        continue
                else:
                    stats["migrated"] += 1
                try:
                    completed[rec["key"]] = decode_result(rec["result"])
                except (ValueError, KeyError, TypeError) as exc:
                    reject(lineno, f"undecodable record: "
                                   f"{type(exc).__name__}: {exc}")
                    continue
                stats["records"] += 1
        return completed

    def keys(self) -> set:
        """Config hashes with a completed (decodable) journal entry."""
        return set(self.load())

    # -- writing ------------------------------------------------------------

    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a")
        return self._fh

    def record(self, key: str, result, kind: str = "",
               attempts: int = 1) -> bool:
        """Append one completed cell; durable before this returns.

        One ``write`` call per record plus ``fsync`` keeps the journal
        consistent under a parent kill: either the full line is on disk
        or a torn tail that :meth:`load` drops.  Each record carries a
        SHA-256 of its own content so :meth:`load` detects mid-journal
        corruption, not just a torn tail.

        A failing disk (ENOSPC/EIO) does **not** abort the batch: the
        error is counted in :attr:`write_errors` (graceful degradation
        — the in-memory result survives, only resume coverage shrinks)
        and ``False`` is returned.
        """
        rec = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "attempts": attempts,
            "result": encode_result(result),
        }
        rec["sha256"] = _record_digest(rec)
        data = json.dumps(rec, default=str).encode()
        spec = _artifacts.take_write_fault()
        try:
            _artifacts.raise_for_disk_fault(spec)
            if spec is not None:
                data = _artifacts.corrupt_bytes(data, spec)
            fh = self._handle()
            if spec is not None and spec.mode == "torn":
                fh.write(data.decode(errors="replace"))  # crashed mid-line
            else:
                fh.write(data.decode(errors="replace") + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        except OSError:
            self.write_errors += 1
            return False
        return True

    def quarantine(self, entry: Dict[str, Any]) -> None:
        """Append a corrupt/invalid payload description for post-mortem."""
        with open(self.quarantine_path, "a") as fh:
            fh.write(json.dumps(entry, default=str) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def reset(self) -> None:
        """Truncate the journal (a fresh, non-resumed run)."""
        self.close()
        for path in (self.path, self.quarantine_path):
            if os.path.exists(path):
                os.remove(path)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({self.path!r})"


def migrate_journal(path: str, out_path: Optional[str] = None) -> int:
    """Rewrite a journal under the current schema; returns the record count.

    Every loadable record — any supported version — is re-encoded as a
    version-:data:`CHECKPOINT_SCHEMA_VERSION` record with a fresh
    checksum; torn/corrupt lines are left behind (their cells re-run,
    as on load).  The rewrite is atomic (temp + ``os.replace``), so a
    migration killed half-way leaves the original journal intact.
    Round-trip: ``load()`` of the migrated journal equals ``load()`` of
    the original.
    """
    kept: Dict[str, Dict[str, Any]] = {}
    if os.path.exists(path):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(rec, dict):
                    continue
                version = rec.get("schema_version")
                if version not in SUPPORTED_SCHEMA_VERSIONS:
                    continue
                if version >= 2:
                    claimed = rec.pop("sha256", None)
                    if claimed != _record_digest(rec):
                        continue
                try:
                    decode_result(rec["result"])  # must round-trip
                except (ValueError, KeyError, TypeError):
                    continue
                rec["schema_version"] = CHECKPOINT_SCHEMA_VERSION
                rec.pop("sha256", None)
                rec["sha256"] = _record_digest(rec)
                kept[rec["key"]] = rec
    lines = [json.dumps(rec, default=str) for rec in kept.values()]
    text = "".join(line + "\n" for line in lines)
    _artifacts.atomic_write_bytes(out_path or path, text.encode())
    return len(kept)
