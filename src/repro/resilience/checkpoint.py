"""Checkpoint journal: completed cells survive a dead parent process.

The store is an append-only JSON-lines file with one record per
completed cell, keyed by the cell's ``config_hash`` (the same stable
hash the run manifest records, so a checkpoint entry and a manifest
cell cross-reference for free).  Records are flushed **and fsynced**
after every cell: when the parent is SIGKILLed mid-batch, everything
that finished is on disk, and the crash window can at worst leave one
*truncated trailing line*, which :meth:`CheckpointStore.load` detects
and drops (the affected cell simply re-runs).

Keying by config hash rather than batch position means a resumed run
does not need the same cell *ordering* — any batch containing a cell
with the same full parameter set reuses its result — and two identical
cells in one batch share one journal entry.

A sibling ``<journal>.quarantine.jsonl`` receives payloads that failed
schema validation (see :mod:`repro.resilience.validate`): corrupt
results are never replayed into a resumed run, but they are kept for
post-mortem instead of vanishing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from ..memsim.engine import SimResult

__all__ = ["CheckpointStore", "encode_result", "decode_result",
           "CHECKPOINT_SCHEMA_VERSION"]

#: bumped whenever the journal record layout changes incompatibly
CHECKPOINT_SCHEMA_VERSION = 1


def _plain(value):
    """Coerce numpy scalars to plain Python so json round-trips exactly."""
    item = getattr(value, "item", None)
    return item() if callable(item) else value


def encode_result(result) -> Dict[str, Any]:
    """A :class:`~repro.experiments.harness.CellResult` as a JSON-safe dict.

    Floats survive JSON exactly (shortest-repr round-trip), so a decoded
    result compares equal to the live one.
    """
    sim = result.sim
    return {
        "runtime_seconds": _plain(result.runtime_seconds),
        "counters": {k: _plain(v) for k, v in result.counters.items()},
        "n_threads_simulated": _plain(result.n_threads_simulated),
        "wall_seconds": _plain(result.wall_seconds),
        "sim": {
            "counters": {k: _plain(v) for k, v in sim.counters.items()},
            "level_served": {k: _plain(v) for k, v in sim.level_served.items()},
            "runtime_seconds": _plain(sim.runtime_seconds),
            "per_thread_cycles": {str(k): _plain(v)
                                  for k, v in sim.per_thread_cycles.items()},
            "n_accesses": _plain(sim.n_accesses),
            "count_scale": _plain(sim.count_scale),
            "work_scale": _plain(sim.work_scale),
        },
    }


def decode_result(doc: Dict[str, Any]):
    """Rebuild a :class:`CellResult` from :func:`encode_result` output."""
    from ..experiments.harness import CellResult

    sim_doc = doc["sim"]
    sim = SimResult(
        counters=dict(sim_doc["counters"]),
        level_served=dict(sim_doc["level_served"]),
        runtime_seconds=sim_doc["runtime_seconds"],
        per_thread_cycles={int(k): v
                           for k, v in sim_doc["per_thread_cycles"].items()},
        n_accesses=sim_doc["n_accesses"],
        count_scale=sim_doc["count_scale"],
        work_scale=sim_doc["work_scale"],
    )
    return CellResult(
        runtime_seconds=doc["runtime_seconds"],
        counters=dict(doc["counters"]),
        sim=sim,
        n_threads_simulated=doc["n_threads_simulated"],
        wall_seconds=doc.get("wall_seconds", 0.0),
    )


class CheckpointStore:
    """Append-only journal of completed cell results.

    Parameters
    ----------
    path : str
        Journal file location.  Created on first :meth:`record`; a
        missing file loads as an empty store.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self.quarantine_path = self.path + ".quarantine.jsonl"
        self._fh = None

    # -- reading ------------------------------------------------------------

    def load(self) -> Dict[str, Any]:
        """Completed results by config hash; tolerant of a torn tail.

        Unparseable lines (the possible last line of a crashed writer)
        and records with an unknown schema version are skipped — a
        skipped cell just re-runs, which is always safe.
        """
        completed: Dict[str, Any] = {}
        if not os.path.exists(self.path):
            return completed
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    if rec.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
                        continue
                    completed[rec["key"]] = decode_result(rec["result"])
                except (ValueError, KeyError, TypeError):
                    continue  # torn or foreign line: drop, cell re-runs
        return completed

    def keys(self) -> set:
        """Config hashes with a completed (decodable) journal entry."""
        return set(self.load())

    # -- writing ------------------------------------------------------------

    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a")
        return self._fh

    def record(self, key: str, result, kind: str = "",
               attempts: int = 1) -> None:
        """Append one completed cell; durable before this returns.

        One ``write`` call per record plus ``fsync`` keeps the journal
        consistent under a parent kill: either the full line is on disk
        or a torn tail that :meth:`load` drops.
        """
        line = json.dumps({
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "attempts": attempts,
            "result": encode_result(result),
        }, default=str)
        fh = self._handle()
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def quarantine(self, entry: Dict[str, Any]) -> None:
        """Append a corrupt/invalid payload description for post-mortem."""
        with open(self.quarantine_path, "a") as fh:
            fh.write(json.dumps(entry, default=str) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def reset(self) -> None:
        """Truncate the journal (a fresh, non-resumed run)."""
        self.close()
        for path in (self.path, self.quarantine_path):
            if os.path.exists(path):
                os.remove(path)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({self.path!r})"
