"""Resource governance: admission control and graceful degradation.

A large sweep dies two boring deaths the retry machinery cannot fix
after the fact: the workers collectively out-allocate the machine and
the kernel OOM-kills them (or the parent), or the artifact disk fills
and every journal append fails.  This module makes the batch entry
point (:func:`repro.experiments.parallel.run_cells_parallel`) *admit*
work it can afford and *degrade* instead of dying:

* **Preflight admission control** — before any worker spawns,
  :meth:`Governor.preflight` estimates per-cell grid + trace memory
  (:meth:`Governor.estimate_cell_bytes`), probes available memory and
  free disk, and clamps the worker count so the batch fits in a
  configurable fraction of what is actually free.
* **Per-worker address-space caps** — workers run under ``RLIMIT_AS``
  (estimate × headroom), so a runaway cell gets a clean, in-band,
  retryable :class:`MemoryError` instead of an opaque OOM kill of a
  random process.
* **Degradation ladder** — cells that still fail under memory pressure
  are re-run with fewer workers, then without trace capture, before
  the batch is allowed to fail: *shrink workers → drop trace capture →
  keep results*.

Everything the governor decides is surfaced as ``resilience.gov_*``
counters in the trace meta header and the run manifest's validated
``resilience`` section, so a degraded run is visibly degraded.

Probes return ``None`` (govern nothing) rather than raising on exotic
platforms; all knobs live on the frozen :class:`Governor` dataclass so
a configured governor can cross a process boundary by value.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Governor", "Admission", "available_memory_bytes",
           "free_disk_bytes", "apply_worker_rlimit"]


def available_memory_bytes() -> Optional[int]:
    """Bytes of memory the batch could claim right now (None = unknown).

    Prefers ``MemAvailable`` from ``/proc/meminfo`` (what the kernel
    says is reclaimable without swapping); falls back to the sysconf
    free-pages estimate.
    """
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        return os.sysconf("SC_AVPHYS_PAGES") * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, AttributeError):
        return None


def free_disk_bytes(path: str) -> Optional[int]:
    """Free bytes on the filesystem holding ``path`` (None = unknown)."""
    try:
        probe = path or "."
        while probe and not os.path.exists(probe):
            parent = os.path.dirname(probe)
            if parent == probe:
                break
            probe = parent
        return shutil.disk_usage(probe or ".").free
    except OSError:
        return None


def apply_worker_rlimit(limit_bytes: int) -> bool:
    """Cap this process's address space (called inside a worker).

    Lowers the soft ``RLIMIT_AS`` only — always permitted — so an
    allocation past the cap raises :class:`MemoryError` in-band instead
    of inviting the kernel OOM killer.  Returns False where rlimits are
    unsupported.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return False
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        soft = limit_bytes if hard == resource.RLIM_INFINITY \
            else min(limit_bytes, hard)
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
        return True
    except (ValueError, OSError):  # pragma: no cover - exotic rlimit state
        return False


@dataclass
class Admission:
    """What the preflight admitted, and why."""

    requested_workers: int
    admitted_workers: int
    est_cell_bytes: int
    available_bytes: Optional[int]
    free_disk_bytes: Optional[int]
    capture_trace: bool = True
    rlimit_bytes: Optional[int] = None
    notes: List[str] = field(default_factory=list)

    def counters(self) -> Dict[str, float]:
        """Numeric ``resilience.gov_*`` counters for trace + manifest."""
        out: Dict[str, float] = {
            "resilience.gov_requested_workers": self.requested_workers,
            "resilience.gov_admitted_workers": self.admitted_workers,
            "resilience.gov_est_cell_mb": self.est_cell_bytes // (1 << 20),
            "resilience.gov_trace_capture": int(self.capture_trace),
        }
        if self.rlimit_bytes is not None:
            out["resilience.gov_rlimit_mb"] = self.rlimit_bytes // (1 << 20)
        if self.free_disk_bytes is not None:
            out["resilience.gov_free_disk_mb"] = \
                self.free_disk_bytes // (1 << 20)
        return out


@dataclass(frozen=True)
class Governor:
    """Admission-control policy (all knobs, no state).

    ``memory_fraction`` of the probed available memory is the batch's
    budget; the worker count is clamped so ``workers ×
    estimate_cell_bytes`` fits it.  ``disk_floor_bytes`` of free space
    must remain on the artifact filesystem or trace capture is dropped
    preemptively (traces are the artifact whose size scales with the
    sweep).  ``rlimit_headroom`` sizes the per-worker ``RLIMIT_AS`` cap
    relative to the estimate; ``rlimit_floor_bytes`` keeps the cap
    above interpreter + numpy baseline mappings.
    """

    memory_fraction: float = 0.5
    disk_floor_bytes: int = 256 << 20
    base_cell_bytes: int = 48 << 20
    bytes_per_voxel: float = 64.0
    min_workers: int = 1
    rlimit_headroom: float = 8.0
    rlimit_floor_bytes: int = 1 << 30
    enforce_rlimit: bool = True

    def estimate_cell_bytes(self, cell) -> int:
        """Heuristic peak bytes one cell needs (grid + stream + replay).

        A cell materializes the dense volume, the layout-ordered grid
        copy, and an access-index stream several entries per voxel —
        all linear in the voxel count — plus an interpreter/numpy
        baseline.  ``bytes_per_voxel`` bundles the linear terms; it is
        deliberately pessimistic (admission errs toward fewer workers,
        which degrades throughput, never correctness).
        """
        shape = getattr(cell, "shape", None) or (64, 64, 64)
        voxels = 1
        for extent in shape:
            voxels *= int(extent)
        return self.base_cell_bytes + int(voxels * self.bytes_per_voxel)

    def preflight(self, cells: Sequence[Any], workers: int, *,
                  artifact_dir: str = ".",
                  available_bytes: Optional[int] = None,
                  disk_bytes: Optional[int] = None) -> Admission:
        """Decide how many workers this batch can actually afford.

        ``available_bytes`` / ``disk_bytes`` override the probes (tests
        and callers that already know).  Never admits fewer than
        ``min_workers``; never raises — an unknown probe governs
        nothing.
        """
        requested = max(1, int(workers))
        est = max((self.estimate_cell_bytes(cell) for cell in cells),
                  default=self.base_cell_bytes)
        avail = available_bytes if available_bytes is not None \
            else available_memory_bytes()
        disk = disk_bytes if disk_bytes is not None \
            else free_disk_bytes(artifact_dir)
        admission = Admission(
            requested_workers=requested, admitted_workers=requested,
            est_cell_bytes=est, available_bytes=avail, free_disk_bytes=disk)
        if avail is not None:
            budget = int(avail * self.memory_fraction)
            fit = max(self.min_workers, budget // max(1, est))
            if fit < requested:
                admission.admitted_workers = fit
                admission.notes.append(
                    f"memory: {requested} workers × ~{est // (1 << 20)} MB "
                    f"exceeds budget {budget // (1 << 20)} MB; "
                    f"admitting {fit}")
        if disk is not None and disk < self.disk_floor_bytes:
            admission.capture_trace = False
            admission.notes.append(
                f"disk: {disk // (1 << 20)} MB free is under the "
                f"{self.disk_floor_bytes // (1 << 20)} MB floor; "
                f"dropping trace capture")
        if self.enforce_rlimit:
            admission.rlimit_bytes = max(
                self.rlimit_floor_bytes, int(est * self.rlimit_headroom))
        return admission
