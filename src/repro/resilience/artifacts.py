"""Integrity-checked durable artifacts: atomic writes, sidecars, quarantine.

Everything the execution stack persists — raw/.npy volumes, checkpoint
journals, manifests, trace files, CSV and figure tables — used to be
written with a bare ``open(path, "w")``: a crash mid-write leaves a
torn file, and a bit flip at rest is silently reread into the next
resumed run.  This module is the single durable-write primitive the
whole project now routes through:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` — the
  ``rows_to_csv`` pattern generalized: temp file in the destination
  directory, ``fsync``, then ``os.replace``, so a killed writer leaves
  either the previous file or the complete new one, never a torn one;
* :func:`write_artifact` — atomic write plus a **sidecar integrity
  record** (``<path>.integrity.json``: SHA-256, byte length, artifact
  kind, schema version) so corruption at rest is detectable;
* :func:`verify_artifact` / :func:`read_artifact` — verification on
  read: a mismatch **quarantines** the artifact (renamed aside to
  ``<path>.corrupt``) and raises :class:`ArtifactIntegrityError` with a
  clear message — a corrupt artifact is never silently reread;
* deterministic disk faults (``enospc@i`` / ``eio@i`` / ``torn@i`` /
  ``bitflip@i``, see :mod:`repro.resilience.faults`) hook in here, so
  the chaos tests can prove all of the above actually engages.

Verification tallies flow into the active tracer as
``resilience.artifacts_*`` counters (and from there into the trace
meta header and the run manifest's validated ``resilience`` section).

The module imports nothing heavy — stdlib plus the fault harness — so
the instrument layer can use it without dragging numpy in.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from . import faults as _faults

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "SIDECAR_SUFFIX",
    "QUARANTINE_SUFFIX",
    "ArtifactIntegrityError",
    "take_write_fault",
    "raise_for_disk_fault",
    "corrupt_bytes",
    "corrupt_at_rest",
    "atomic_write_bytes",
    "atomic_write_text",
    "write_artifact",
    "write_text_artifact",
    "sidecar_path",
    "read_sidecar",
    "verify_artifact",
    "read_artifact",
    "quarantine_artifact",
]

#: bumped whenever the sidecar record layout changes incompatibly
ARTIFACT_SCHEMA_VERSION = 1

#: integrity record written next to each artifact
SIDECAR_SUFFIX = ".integrity.json"

#: corrupt artifacts are renamed aside with this suffix (never deleted)
QUARANTINE_SUFFIX = ".corrupt"


class ArtifactIntegrityError(RuntimeError):
    """An artifact failed verification (and was quarantined, if possible).

    Attributes
    ----------
    path : str
        The artifact as originally addressed.
    problem : str
        What mismatched (size, digest, unreadable sidecar).
    quarantined_to : str or None
        Where the corrupt bytes were renamed for post-mortem, or None
        when quarantining itself failed (e.g. read-only filesystem).
    """

    def __init__(self, path: str, problem: str,
                 quarantined_to: Optional[str] = None):
        self.path = path
        self.problem = problem
        self.quarantined_to = quarantined_to
        where = (f"; corrupt file moved to {quarantined_to}"
                 if quarantined_to else "")
        super().__init__(
            f"{path}: artifact failed integrity verification ({problem})"
            f"{where}; re-create the artifact — it will not be reread")


def _count(name: str, value: int = 1) -> None:
    """Accumulate a tracer counter (lazy import — no cycle, no numpy)."""
    from ..instrument import trace
    trace.add(name, value)


def take_write_fault() -> Optional[_faults.FaultSpec]:
    """Consume one durable-write index against the active fault plan.

    Called once per durable write (artifact payloads and journal
    records — not sidecars) so ``enospc@i``-style specs address the
    i-th write deterministically.  No-op (and no index consumed) when
    fault injection is off.
    """
    plan = _faults.active_plan()
    if not plan:
        return None
    return plan.for_write(_faults.next_write_index())


def raise_for_disk_fault(spec: Optional[_faults.FaultSpec]) -> None:
    """Raise the OSError an ``enospc``/``eio`` fault models (else no-op)."""
    if spec is None:
        return
    if spec.mode == "enospc":
        raise OSError(errno.ENOSPC,
                      f"injected: no space left on device ({spec.to_spec()})")
    if spec.mode == "eio":
        raise OSError(errno.EIO,
                      f"injected: I/O error ({spec.to_spec()})")


def corrupt_bytes(data: bytes, spec: _faults.FaultSpec) -> bytes:
    """The bytes a ``torn``/``bitflip``/``segread-corrupt`` fault leaves
    on disk.

    ``torn`` keeps the first half; ``bitflip`` flips the case bit of
    the first ASCII letter so framing (JSON quotes, newlines) survives
    while the content — and any checksum over it — does not;
    ``segread-corrupt`` flips the low bit of the last byte — segment
    payloads are raw binary, so length-preserving rot is the realistic
    shape and the sidecar digest is the only thing that can catch it.
    """
    if spec.mode == "torn":
        return data[:len(data) // 2]
    if spec.mode == "segread-corrupt":
        return data[:-1] + bytes([data[-1] ^ 0x01]) if data else data
    if spec.mode == "bitflip":
        for i, byte in enumerate(data):
            if 0x41 <= byte <= 0x5A or 0x61 <= byte <= 0x7A:
                return data[:i] + bytes([byte ^ 0x20]) + data[i + 1:]
        return data[:-1] + bytes([data[-1] ^ 0x01]) if data else data
    return data


def _corrupt_in_place(path: str, spec: _faults.FaultSpec) -> None:
    """Apply a post-write disk fault to the finished file (chaos only)."""
    with open(path, "rb") as fh:
        data = fh.read()
    mutated = corrupt_bytes(data, spec)
    with open(path, "wb") as fh:  # repro: noqa[RPC401]
        fh.write(mutated)
        fh.flush()
        os.fsync(fh.fileno())


def corrupt_at_rest(path: str, spec: _faults.FaultSpec) -> None:
    """Rot a finished artifact on disk per ``spec`` (fault injection only).

    The serving read path uses this to model ``segread-corrupt``: the
    replica's bytes went bad *after* a clean write, which is exactly
    the case only sidecar verification can catch.
    """
    _corrupt_in_place(path, spec)


# -- atomic writes --------------------------------------------------------------


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + replace).

    A writer killed at any instant leaves either the previous file or
    the complete new one — never a truncated mix.  The temp file lives
    in the destination directory so the final ``os.replace`` stays on
    one filesystem.
    """
    path = os.fspath(path)
    spec = take_write_fault()
    raise_for_disk_fault(spec)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                                    suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    if spec is not None and spec.mode in ("torn", "bitflip"):
        # model corruption *at rest*: the write itself succeeded, the
        # stored bytes later went bad — what verification must catch
        _corrupt_in_place(path, spec)


def atomic_write_text(path: str, text: str) -> None:
    """:func:`atomic_write_bytes` for text (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))


# -- sidecar integrity records --------------------------------------------------


def sidecar_path(path: str) -> str:
    """Where ``path``'s integrity record lives."""
    return os.fspath(path) + SIDECAR_SUFFIX


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def write_artifact(path: str, data: bytes, *, kind: str = "",
                   schema_version: int = 1) -> Dict[str, Any]:
    """Atomically write an artifact plus its sidecar integrity record.

    ``kind`` names the artifact family (``"raw-volume"``, ``"trace"``,
    ``"csv"``, …) and ``schema_version`` the *artifact's own* format
    version, so future readers can migrate old artifacts knowingly.
    Returns the sidecar record.
    """
    record = {
        "sidecar_schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": kind,
        "schema_version": schema_version,
        "sha256": _digest(data),
        "bytes": len(data),
    }
    atomic_write_bytes(path, data)
    # the sidecar itself does not consume a write index: fault plans
    # target artifact payloads, and an atomically-written sidecar that
    # loses the race just re-verifies as a mismatch
    _write_sidecar(sidecar_path(path), record)
    _count("resilience.artifacts_written")
    return record


def write_text_artifact(path: str, text: str, *, kind: str = "",
                        schema_version: int = 1) -> Dict[str, Any]:
    """:func:`write_artifact` for text content (UTF-8)."""
    return write_artifact(path, text.encode("utf-8"), kind=kind,
                          schema_version=schema_version)


def _write_sidecar(path: str, record: Dict[str, Any]) -> None:
    data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                                    suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def read_sidecar(path: str) -> Optional[Dict[str, Any]]:
    """The artifact's integrity record, or None when it has no sidecar.

    An unreadable/corrupt sidecar is reported as a record with a
    ``"problem"`` key so :func:`verify_artifact` treats it as a
    verification failure rather than a missing record.
    """
    sc = sidecar_path(path)
    if not os.path.exists(sc):
        return None
    try:
        with open(sc, "rb") as fh:
            record = json.loads(fh.read().decode("utf-8"))
        if not isinstance(record, dict) or "sha256" not in record:
            return {"problem": "sidecar is not an integrity record"}
        return record
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        return {"problem": f"unreadable sidecar: {exc}"}


def quarantine_artifact(path: str, problem: str) -> Optional[str]:
    """Rename a corrupt artifact (and its sidecar) aside for post-mortem.

    Returns the quarantine path, or None when the rename itself failed.
    The quarantine name is suffixed with a counter so repeated
    corruption of the same path never overwrites evidence.
    """
    base = os.fspath(path) + QUARANTINE_SUFFIX
    target = base
    n = 0
    while os.path.exists(target):
        n += 1
        target = f"{base}.{n}"
    try:
        os.replace(path, target)
    except OSError:
        return None
    sc = sidecar_path(path)
    if os.path.exists(sc):
        try:
            os.replace(sc, target + SIDECAR_SUFFIX)
        except OSError:
            pass
    _count("resilience.artifacts_quarantined")
    return target


def verify_artifact(path: str, *, quarantine: bool = True,
                    require_sidecar: bool = False) -> Optional[Dict[str, Any]]:
    """Check ``path`` against its sidecar; quarantine + raise on mismatch.

    Returns the sidecar record on success, or None when the artifact
    has no sidecar (a legacy file — tolerated unless
    ``require_sidecar``).  On any mismatch the artifact is renamed
    aside (when ``quarantine``) and :class:`ArtifactIntegrityError` is
    raised: the caller can never read a wrong byte from a verified
    artifact.
    """
    path = os.fspath(path)
    record = read_sidecar(path)
    if record is None:
        if require_sidecar:
            raise ArtifactIntegrityError(path, "no integrity sidecar")
        return None
    problem = record.get("problem")
    if problem is None:
        try:
            actual_bytes = os.path.getsize(path)
        except OSError as exc:
            problem = f"artifact unreadable: {exc}"
        else:
            if actual_bytes != record.get("bytes"):
                problem = (f"size {actual_bytes} B != recorded "
                           f"{record.get('bytes')} B")
    if problem is None:
        with open(path, "rb") as fh:
            actual_sha = _digest(fh.read())
        if actual_sha != record.get("sha256"):
            problem = (f"sha256 {actual_sha[:12]}… != recorded "
                       f"{str(record.get('sha256'))[:12]}…")
    if problem is None:
        _count("resilience.artifacts_verified")
        return record
    quarantined_to = quarantine_artifact(path, problem) if quarantine else None
    raise ArtifactIntegrityError(path, problem, quarantined_to)


def read_artifact(path: str, *, verify: bool = True,
                  require_sidecar: bool = False) -> bytes:
    """Read an artifact's bytes, verifying against the sidecar first."""
    if verify:
        verify_artifact(path, require_sidecar=require_sidecar)
    with open(path, "rb") as fh:
        return fh.read()
