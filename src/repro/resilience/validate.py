"""Worker-payload validation: corrupt results fail loudly, never merge.

A worker ships back a plain dict (see
:func:`repro.experiments.parallel._run_cell_job`).  Between a worker
and the merged result list sits exactly one line of defense — this
module.  If a payload is structurally wrong (wrong types, non-finite
measurements, missing fields), the cell becomes a failure with error
class ``corrupt-result``: retryable under the retry policy, quarantined
next to the checkpoint journal, and *never* a silently wrong row in a
figure or CSV.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

__all__ = ["validate_outcome"]


def _finite_number(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False


def validate_outcome(payload: Any) -> Optional[str]:
    """Problem description for a worker payload, or None when valid.

    A valid payload is a dict with an int ``index`` and either an
    ``error`` + ``traceback`` pair (a well-formed failure) or a
    ``result`` that is a structurally sound
    :class:`~repro.experiments.harness.CellResult`.
    """
    from ..experiments.harness import CellResult

    if not isinstance(payload, dict):
        return f"payload is {type(payload).__name__}, not a dict"
    if not isinstance(payload.get("index"), int):
        return f"index is {payload.get('index')!r}"
    if "error" in payload:
        if not isinstance(payload["error"], str) \
                or not isinstance(payload.get("traceback"), str):
            return "error payload without string error/traceback"
        return None
    result = payload.get("result")
    if not isinstance(result, CellResult):
        return (f"result is {type(result).__name__}, not CellResult")
    if not _finite_number(result.runtime_seconds) or result.runtime_seconds < 0:
        return f"runtime_seconds is {result.runtime_seconds!r}"
    if not isinstance(result.counters, dict):
        return f"counters is {type(result.counters).__name__}"
    for name, value in result.counters.items():
        if not _finite_number(value):
            return f"counter {name!r} is {value!r}"
    try:
        n_threads = int(result.n_threads_simulated)
    except (TypeError, ValueError):
        return f"n_threads_simulated is {result.n_threads_simulated!r}"
    if n_threads < 0:
        return f"n_threads_simulated is {n_threads}"
    return None


def corrupt_payload(index: int) -> Dict[str, Any]:
    """The payload the ``corrupt`` fault mode ships: plausible shape,
    invalid content — exactly what validation must catch."""
    return {"index": index, "result": {"runtime_seconds": float("nan")},
            "records": None}
