"""Deterministic fault injection for the execution stack.

Recovery code that is never exercised is broken code.  This module lets
tests and the CI chaos-smoke job make a cell *deterministically* fail,
at a chosen cell index, on a chosen attempt:

``crash``
    ``os._exit(3)`` — the process dies abruptly, no exception, no
    cleanup.  In a worker this models an OOM kill / segfault; on the
    serial path it models the parent being SIGKILLed mid-batch (the
    checkpoint-resume acceptance scenario).
``raise``
    raise :class:`InjectedFault` — an ordinary in-band exception,
    classified transient by the retry policy.
``hang``
    sleep for ``seconds`` (default 3600) — models a wedged worker; only
    the supervised pool's per-cell timeout can reap it.
``corrupt``
    the cell "succeeds" but returns a schema-invalid payload — models
    a worker shipping garbage; result validation must quarantine it.
``oom``
    raise :class:`MemoryError` — models an allocation failure under
    memory pressure; the retry policy classifies it memory-pressure so
    the governor's degradation ladder (fewer workers, then no trace
    capture) engages.  See :mod:`repro.resilience.governor`.

A second family targets *durable writes* instead of cells.  These are
keyed on the process-local **write index** — the running count of
journal records and artifact files written since the plan was installed
(:func:`next_write_index`) — and model the disk failing under the
durability layer (:mod:`repro.resilience.artifacts`):

``enospc`` / ``eio``
    the write raises ``OSError`` (``ENOSPC`` / ``EIO``) before any byte
    lands — models a full or failing disk;
``torn``
    only the first half of the payload reaches disk — models a crash
    mid-write of a non-atomic writer (exactly the corruption the atomic
    writer prevents and verification-on-read must catch);
``bitflip``
    one byte of the payload is corrupted on disk (the first ASCII
    letter gets its case bit flipped, so JSON framing survives but the
    content — and therefore the checksum — does not) — models silent
    bit rot that only an integrity record can detect.

A third family targets the *serving read path*
(:mod:`repro.serve.store`).  ``segread-corrupt`` and ``segread-slow``
are keyed on the process-local **segment-read index** — the running
count of replica-read attempts since the plan was installed
(:func:`next_read_index`), mirroring the write-index scheme —
and ``shard-down`` is keyed on the simulated shard id and fires on
every read routed to that shard:

``segread-corrupt``
    the i-th segment read finds its bytes rotted at rest — the
    integrity sidecar must catch it and failover must route to the
    next replica (then read-repair rewrites the bad copy);
``segread-slow``
    the i-th segment read stalls for ``seconds`` before returning —
    models a degraded disk/replica; hedging and deadlines must engage;
``shard-down``
    every read addressed to shard ``index`` raises
    :class:`InjectedFault` — models a dead shard; the per-shard
    circuit breaker must trip and failover must carry the traffic.

A fourth family targets *cluster membership*
(:mod:`repro.serve.cluster`).  These are keyed on the cluster's
**event counter** — the deterministic tick index the failure detector
runs on — via the ``at=`` option, with the shard id before the colon:

``shard-kill``
    shard ``index`` goes down at cluster event ``at`` — the failure
    detector must mark it suspect then dead and the rebalancer must
    re-replicate its segments from healthy siblings;
``shard-join``
    shard ``index`` comes (back) up at cluster event ``at`` — the
    detector must walk it through the joining grace period and the
    map must re-admit it;
``shard-flap``
    shorthand for a kill at ``at`` followed by a join at
    ``at + down`` — the bounded outage that must *not* cause a wrong
    byte or a permanent membership change.

Faults are described by a compact spec string so they cross process
boundaries through the ``REPRO_FAULTS`` environment variable (worker
processes — forked or spawned — inherit the environment)::

    crash@2                 # crash cell 2, first attempt only
    hang@5:always           # hang cell 5 on every attempt
    hang@5:seconds=120      # hang duration override
    crash@1,corrupt@4       # plans compose with commas
    enospc@1,torn@3         # disk faults at write indexes 1 and 3
    shard-down@1,segread-slow@4:seconds=0.05   # serve faults
    shard-kill@2:at=8,shard-join@2:at=32       # cluster membership
    shard-flap@4:at=10:down=6                  # kill at 10, rejoin at 16

``@N:once`` (the default) fires on the first attempt only, so a retry
then succeeds — the shape of a genuinely transient fault.  ``:always``
makes the fault permanent, which is how tests force a cell into the
failure path.  Everything is keyed on (cell index, attempt) or the
write index: no randomness, no clocks, so a chaos run is exactly
reproducible.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "parse_faults",
    "install_faults",
    "clear_faults",
    "active_plan",
    "next_write_index",
    "reset_write_index",
    "next_read_index",
    "reset_read_index",
]

#: environment variable carrying the fault spec into worker processes
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: exit status used by the ``crash`` mode (distinctive in waitpid output)
CRASH_EXIT_CODE = 3

#: modes keyed on (cell index, attempt)
CELL_MODES = ("crash", "raise", "hang", "corrupt", "oom")

#: modes keyed on the process-local durable-write index
WRITE_MODES = ("enospc", "eio", "torn", "bitflip")

#: modes targeting the serving read path: the first two are keyed on
#: the process-local segment-read index, ``shard-down`` on the shard id
SERVE_MODES = ("segread-corrupt", "segread-slow", "shard-down")

#: modes targeting cluster membership: keyed on (shard id, cluster
#: event counter via the ``at=`` option); see repro.serve.cluster
CLUSTER_MODES = ("shard-kill", "shard-join", "shard-flap")

_MODES = CELL_MODES + WRITE_MODES + SERVE_MODES + CLUSTER_MODES


class InjectedFault(RuntimeError):
    """The exception raised by the ``raise`` fault mode."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what happens, at which cell index, on which attempts.

    Cluster modes reuse ``index`` for the shard id and carry the
    cluster event they fire at in ``at`` (``down`` is the flap's
    outage length in events).
    """

    mode: str
    index: int
    when: str = "once"      # "once" (attempt 1 only) or "always"
    seconds: float = 3600.0  # hang duration
    at: int = -1            # cluster event the membership change fires at
    down: int = 0           # shard-flap outage length, in cluster events

    def fires(self, index: int, attempt: int) -> bool:
        """True when this fault triggers for (cell ``index``, ``attempt``)."""
        if index != self.index:
            return False
        return self.when == "always" or attempt <= 1

    def to_spec(self) -> str:
        parts = [f"{self.mode}@{self.index}"]
        if self.when != "once":
            parts.append(self.when)
        if self.mode in ("hang", "segread-slow") and self.seconds != 3600.0:
            parts.append(f"seconds={self.seconds:g}")
        if self.at >= 0:
            parts.append(f"at={self.at}")
        if self.down:
            parts.append(f"down={self.down}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec`; first match wins."""

    specs: Tuple[FaultSpec, ...] = ()

    def for_cell(self, index: int, attempt: int) -> Optional[FaultSpec]:
        """The cell fault that fires for this (cell, attempt), if any."""
        for spec in self.specs:
            if spec.mode in CELL_MODES and spec.fires(index, attempt):
                return spec
        return None

    def for_write(self, index: int) -> Optional[FaultSpec]:
        """The disk fault that fires for this durable-write index, if any.

        Write indexes never repeat within a process, so the once/always
        distinction is moot here — the index match alone decides.
        """
        for spec in self.specs:
            if spec.mode in WRITE_MODES and spec.index == index:
                return spec
        return None

    def for_segment_read(self, index: int) -> Optional[FaultSpec]:
        """The serve fault that fires for this segment-read index, if any.

        Like write indexes, read indexes never repeat within a process.
        ``shard-down`` is keyed on the shard id, not the read index, so
        it never matches here (see :meth:`for_shard`).
        """
        for spec in self.specs:
            if spec.mode in ("segread-corrupt", "segread-slow") \
                    and spec.index == index:
                return spec
        return None

    def cluster_actions(self, event: int) -> "list[Tuple[str, int]]":
        """Membership changes scheduled for cluster ``event``.

        Returns ``("kill", shard)`` / ``("join", shard)`` pairs in spec
        order.  A ``shard-flap`` expands to a kill at ``at`` and a join
        at ``at + down``, so one spec exercises the whole outage
        window.  Keyed on the deterministic event counter — the same
        plan replays the same membership history every run.
        """
        actions = []
        for spec in self.specs:
            if spec.mode not in CLUSTER_MODES or spec.at < 0:
                continue
            if spec.mode == "shard-kill" and event == spec.at:
                actions.append(("kill", spec.index))
            elif spec.mode == "shard-join" and event == spec.at:
                actions.append(("join", spec.index))
            elif spec.mode == "shard-flap":
                if event == spec.at:
                    actions.append(("kill", spec.index))
                if event == spec.at + max(1, spec.down):
                    actions.append(("join", spec.index))
        return actions

    def for_shard(self, shard: int) -> Optional[FaultSpec]:
        """The ``shard-down`` fault covering simulated shard ``shard``.

        A downed shard stays down: the fault fires on every read routed
        to it regardless of the once/always flag.
        """
        for spec in self.specs:
            if spec.mode == "shard-down" and spec.index == shard:
                return spec
        return None

    def to_spec(self) -> str:
        return ",".join(spec.to_spec() for spec in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)


def parse_faults(spec: str) -> FaultPlan:
    """Parse a spec string (see module docstring) into a :class:`FaultPlan`."""
    specs = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, *opts = chunk.split(":")
        if "@" not in head:
            raise ValueError(f"fault {chunk!r}: expected MODE@INDEX")
        mode, _, index_text = head.partition("@")
        if mode not in _MODES:
            raise ValueError(f"fault {chunk!r}: unknown mode {mode!r} "
                             f"(known: {', '.join(_MODES)})")
        try:
            index = int(index_text)
        except ValueError:
            raise ValueError(f"fault {chunk!r}: index {index_text!r} "
                             f"is not an integer") from None
        when = "once"
        seconds = 3600.0
        at = -1
        down = 0
        for opt in opts:
            if opt in ("once", "always"):
                when = opt
            elif opt.startswith("seconds="):
                seconds = float(opt[len("seconds="):])
            elif opt.startswith("at="):
                at = int(opt[len("at="):])
            elif opt.startswith("down="):
                down = int(opt[len("down="):])
            else:
                raise ValueError(f"fault {chunk!r}: unknown option {opt!r}")
        if mode in CLUSTER_MODES and at < 0:
            raise ValueError(f"fault {chunk!r}: cluster modes need at=EVENT")
        specs.append(FaultSpec(mode=mode, index=index, when=when,
                               seconds=seconds, at=at, down=down))
    return FaultPlan(tuple(specs))


def install_faults(plan) -> FaultPlan:
    """Activate a fault plan process-wide (and for future workers).

    Accepts a :class:`FaultPlan` or a spec string.  The plan is exported
    via ``REPRO_FAULTS`` so worker processes — started before or after
    this call, forked or spawned — resolve the same plan.
    """
    if isinstance(plan, str):
        plan = parse_faults(plan)
    os.environ[FAULTS_ENV_VAR] = plan.to_spec()
    reset_write_index()
    reset_read_index()
    return plan


def clear_faults() -> None:
    """Deactivate fault injection for this process and future workers."""
    os.environ.pop(FAULTS_ENV_VAR, None)
    reset_write_index()
    reset_read_index()


def active_plan() -> FaultPlan:
    """The currently active plan (empty when fault injection is off)."""
    spec = os.environ.get(FAULTS_ENV_VAR)
    if not spec:
        return FaultPlan()
    return parse_faults(spec)


def fire(spec: FaultSpec) -> bool:
    """Execute a cell fault.  Returns True when the caller must corrupt
    its own payload (the ``corrupt`` mode is cooperative — only the cell
    runner knows what a payload looks like); the other modes never
    return normally or return False after sleeping."""
    if spec.mode == "crash":
        os._exit(CRASH_EXIT_CODE)
    if spec.mode == "raise":
        raise InjectedFault(
            f"injected fault at cell {spec.index} ({spec.to_spec()})")
    if spec.mode == "oom":
        raise MemoryError(
            f"injected allocation failure at cell {spec.index} "
            f"({spec.to_spec()})")
    if spec.mode == "hang":
        time.sleep(spec.seconds)
        return False
    if spec.mode == "corrupt":
        return True
    raise AssertionError(f"unhandled fault mode {spec.mode!r}")


# -- durable-write fault indexing -----------------------------------------------

# the running count of durable writes (journal records + artifact
# files) since the fault plan was installed; WRITE_MODES key on it
_WRITE_INDEX = [0]


def next_write_index() -> int:
    """Claim the next durable-write index (process-local, monotonic)."""
    index = _WRITE_INDEX[0]
    _WRITE_INDEX[0] = index + 1
    return index


def reset_write_index() -> None:
    """Restart write indexing (done by install_faults / clear_faults)."""
    _WRITE_INDEX[0] = 0


# -- segment-read fault indexing ------------------------------------------------

# the running count of replica-read attempts on the serving path since
# the fault plan was installed; segread-* modes key on it
_READ_INDEX = [0]


def next_read_index() -> int:
    """Claim the next segment-read index (process-local, monotonic)."""
    index = _READ_INDEX[0]
    _READ_INDEX[0] = index + 1
    return index


def reset_read_index() -> None:
    """Restart read indexing (done by install_faults / clear_faults)."""
    _READ_INDEX[0] = 0
