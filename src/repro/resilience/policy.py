"""Retry classification and deterministic backoff.

A failed cell is retried only when retrying can plausibly change the
outcome.  Failures are classified by *error class* — the exception's
type name for in-band errors, or one of three supervisor-assigned
sentinel classes:

``worker-death``
    the worker process died without delivering a result (crash, OOM
    kill, segfault) — transient by definition of "the process is gone";
``timeout``
    the per-cell deadline expired and the worker was reaped —
    retryable unless the policy says otherwise;
``corrupt-result``
    the payload failed schema validation — could be a one-off memory
    corruption, so retryable, but the bad payload is quarantined either
    way (see :mod:`repro.resilience.validate`);
``deadline``
    a serving-path query deadline expired mid-processing (see
    :mod:`repro.serve.reliability`) — handled exactly like
    ``timeout``: retryable unless the policy disables timeout retries,
    because a fresh attempt gets a fresh deadline and a transiently
    slow replica may answer in time;
``oom-kill``
    the worker died by SIGKILL — on Linux almost always the kernel OOM
    killer.  Retryable, but unlike a plain ``worker-death`` it is also
    *memory pressure* (see :func:`memory_pressure`): retrying at the
    same concurrency would re-create the same pressure, so the batch
    runner responds by descending the governor's degradation ladder
    (fewer workers, then no trace capture) rather than retrying
    blindly.  An in-band :class:`MemoryError` classifies the same way.

Deterministic exceptions (``ValueError``, ``TypeError``, …) are
*permanent*: a mis-specified cell fails identically every time, and
retrying it only burns the batch's wall clock.  Everything else
(``OSError``, ``MemoryError``, :class:`~repro.resilience.faults.InjectedFault`,
…) is presumed transient.

Backoff is plain exponential with **no jitter**: resilience runs must
be reproducible, and a seeded sweep that recovered once must recover
identically on replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["RetryPolicy", "classify_error", "memory_pressure",
           "PERMANENT_ERROR_CLASSES", "MEMORY_PRESSURE_ERROR_CLASSES"]

#: exception type names that fail the same way every attempt
PERMANENT_ERROR_CLASSES = (
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "AssertionError",
    "NotImplementedError",
)

#: error classes that mean the machine (not the cell) ran out of memory —
#: the cue for the governor's degradation ladder, not a plain retry
MEMORY_PRESSURE_ERROR_CLASSES = (
    "MemoryError",
    "oom-kill",
)


def memory_pressure(error: str) -> bool:
    """True when this failure signals memory pressure (see the ladder)."""
    return classify_error(error) in MEMORY_PRESSURE_ERROR_CLASSES


def classify_error(error: str) -> str:
    """Error class of a failure string (``"ValueError: ..."`` → ``"ValueError"``).

    Supervisor sentinel classes (``worker-death``, ``timeout``,
    ``corrupt-result``) pass through unchanged.
    """
    return error.split(":", 1)[0].strip()


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed cells are re-attempted.

    ``max_retries`` is *extra* attempts: 0 (the default) preserves the
    historical fail-fast behavior, 2 means a cell runs at most 3 times.
    """

    max_retries: int = 0
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    retry_timeouts: bool = True
    permanent: Tuple[str, ...] = PERMANENT_ERROR_CLASSES

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be >= 0")

    def retryable(self, error: str) -> bool:
        """Should a failure with this error string be re-attempted?"""
        cls = classify_error(error)
        if cls in ("timeout", "deadline", "DeadlineExceeded"):
            return self.retry_timeouts
        if cls in ("worker-death", "corrupt-result", "oom-kill"):
            return True
        return cls not in self.permanent

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before re-running attempt ``attempt + 1`` (deterministic).

        ``attempt`` is the 1-based attempt that just failed, so the
        first retry waits ``backoff_base`` seconds, the second
        ``backoff_base * backoff_factor``, and so on up to
        ``backoff_max``.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        return min(delay, self.backoff_max)
