"""A supervised worker pool: per-job timeouts, kill + requeue, retries.

``concurrent.futures.ProcessPoolExecutor`` cannot express the two
failure modes that dominate long sweeps: a *hung* worker (the whole
``map`` blocks forever) and a *dead* worker (``BrokenProcessPool``
poisons every in-flight future, discarding completed work).  This pool
owns its worker processes directly so the supervisor can:

* enforce a **per-job deadline** — a worker past its deadline is
  terminated (SIGTERM, then SIGKILL) and the job is requeued or failed,
  while every other worker keeps running;
* survive **abrupt worker death** — an exit without a result (OOM kill,
  ``os._exit``, segfault) fails only that job, with error class
  ``worker-death``;
* **retry** failed jobs under a :class:`~repro.resilience.policy.RetryPolicy`
  with deterministic backoff, re-dispatching to any free worker;
* **validate** every payload before it counts as a result, so a
  corrupted worker payload becomes an error (class ``corrupt-result``),
  never a silently wrong entry.

Jobs are handed to a module-level ``worker_fn`` (picklable, so the pool
works under both ``fork`` and ``spawn`` start methods).  Workers are
long-lived and process many jobs, preserving the per-process dataset
caches that make sweeps fast.  Results are delivered through
``on_outcome`` the moment each job reaches a final state — which is what
lets the caller journal completed cells *before* the batch (or the
parent process) dies.

Every result message carries the sending worker's id, and the
supervisor only accepts a result from the worker currently assigned
that job — a worker reaped a microsecond after finishing cannot smuggle
a stale result into a retry already running elsewhere.
"""

from __future__ import annotations

import itertools
import multiprocessing
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence

from .policy import RetryPolicy, classify_error

__all__ = ["SupervisedPool", "JobOutcome"]

#: supervisor poll interval (seconds) — bounds timeout-detection latency
_POLL_SECONDS = 0.05

#: grace period between SIGTERM and SIGKILL when reaping a worker
_REAP_GRACE_SECONDS = 0.5


def _worker_main(worker_id: int, worker_fn, task_q, result_q,
                 rlimit_bytes=None) -> None:
    """Worker loop: pull (seq, payload) jobs until the None sentinel.

    ``worker_fn`` is expected to catch job-level exceptions itself and
    return an error payload; the blanket except here is a last resort so
    a bug in the wrapper degrades to an in-band error, not worker death.

    ``rlimit_bytes`` caps this worker's address space (``RLIMIT_AS``) so
    a runaway cell raises an in-band, retryable :class:`MemoryError`
    instead of drawing the kernel OOM killer onto a random process.
    """
    if rlimit_bytes:
        from .governor import apply_worker_rlimit
        apply_worker_rlimit(rlimit_bytes)
    while True:
        msg = task_q.get()
        if msg is None:
            return
        seq, attempt, payload = msg
        try:
            out = worker_fn(payload, attempt)
        except KeyboardInterrupt:  # parent is shutting everything down
            return
        except BaseException as exc:
            out = {"error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc()}
        result_q.put((worker_id, seq, out))


@dataclass
class JobOutcome:
    """Final state of one job after all attempts."""

    seq: int
    payload: Optional[Dict[str, Any]] = None  # worker dict on success / in-band error
    error: Optional[str] = None               # None iff the job succeeded
    error_class: Optional[str] = None
    traceback: str = ""
    attempts: int = 1
    timeouts: int = 0
    deaths: int = 0
    quarantined: List[str] = field(default_factory=list)  # corrupt-payload notes

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Attempt:
    seq: int
    payload: Any
    attempt: int = 1
    not_before: float = 0.0
    timeouts: int = 0
    deaths: int = 0
    quarantined: List[str] = field(default_factory=list)


class _Worker:
    """One supervised process plus its private task queue."""

    def __init__(self, worker_id: int, ctx, worker_fn, result_q,
                 rlimit_bytes=None):
        self.worker_id = worker_id
        self.task_q = ctx.SimpleQueue()
        self.proc = ctx.Process(target=_worker_main,
                                args=(worker_id, worker_fn, self.task_q,
                                      result_q, rlimit_bytes),
                                daemon=True)
        self.proc.start()
        self.current: Optional[_Attempt] = None
        self.deadline: Optional[float] = None

    def assign(self, attempt: _Attempt, deadline: Optional[float]) -> None:
        self.current = attempt
        self.deadline = deadline
        self.task_q.put((attempt.seq, attempt.attempt, attempt.payload))

    def release(self) -> _Attempt:
        attempt, self.current, self.deadline = self.current, None, None
        return attempt

    def reap(self) -> None:
        """Terminate the process, escalating to SIGKILL if it lingers."""
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(_REAP_GRACE_SECONDS)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join()

    def retire(self) -> None:
        """Graceful shutdown of an idle worker."""
        try:
            self.task_q.put(None)
        except (OSError, ValueError):
            pass  # queue already broken; fall through to force
        self.proc.join(_REAP_GRACE_SECONDS)
        if self.proc.is_alive():
            self.reap()


class SupervisedPool:
    """Run jobs through supervised workers (see module docstring).

    Parameters
    ----------
    worker_fn : callable
        Module-level function ``payload -> dict`` (must be picklable).
        A dict with an ``"error"`` key is an in-band failure; anything
        else (post-validation) is a success.
    n_workers : int
        Worker process count (capped at the job count per run).
    mp_context : multiprocessing context, optional
        Defaults to the platform default (``fork`` on Linux, preserving
        warm parent caches).
    rlimit_bytes : int, optional
        Per-worker ``RLIMIT_AS`` cap (see
        :func:`repro.resilience.governor.apply_worker_rlimit`).  None
        (the default) leaves workers uncapped.
    """

    def __init__(self, worker_fn: Callable[[Any], Dict[str, Any]],
                 n_workers: int, mp_context=None,
                 rlimit_bytes: Optional[int] = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.worker_fn = worker_fn
        self.n_workers = n_workers
        self.rlimit_bytes = rlimit_bytes
        self.ctx = mp_context or multiprocessing.get_context()

    def run(self, payloads: Sequence[Any],
            timeout: Optional[float] = None,
            retry: Optional[RetryPolicy] = None,
            validate: Optional[Callable[[Any], Optional[str]]] = None,
            on_outcome: Optional[Callable[[JobOutcome], None]] = None,
            ) -> List[JobOutcome]:
        """Run every payload to a final outcome; outcomes in input order.

        ``on_outcome`` fires as each job *finishes* (success or
        exhausted failure), in completion order — callers use it to
        checkpoint eagerly.  On ``KeyboardInterrupt`` (or any other
        unexpected exception) all workers are terminated before the
        exception propagates, so no orphan processes outlive the batch.
        """
        retry = retry or RetryPolicy()
        pending = deque(_Attempt(seq, payload)
                        for seq, payload in enumerate(payloads))
        outcomes: Dict[int, JobOutcome] = {}
        result_q = self.ctx.Queue()
        workers: Dict[int, _Worker] = {}
        worker_ids = itertools.count()

        def spawn() -> None:
            worker = _Worker(next(worker_ids), self.ctx, self.worker_fn,
                             result_q, self.rlimit_bytes)
            workers[worker.worker_id] = worker

        def finish(outcome: JobOutcome) -> None:
            outcomes[outcome.seq] = outcome
            if on_outcome is not None:
                on_outcome(outcome)

        def fail_or_retry(attempt: _Attempt, error: str,
                          payload: Optional[Dict[str, Any]] = None,
                          tb: str = "") -> None:
            cls = classify_error(error)
            if retry.retryable(error) and attempt.attempt <= retry.max_retries:
                delay = retry.backoff_seconds(attempt.attempt)
                pending.append(_Attempt(
                    seq=attempt.seq, payload=attempt.payload,
                    attempt=attempt.attempt + 1,
                    not_before=time.monotonic() + delay,
                    timeouts=attempt.timeouts, deaths=attempt.deaths,
                    quarantined=attempt.quarantined,
                ))
                return
            finish(JobOutcome(
                seq=attempt.seq, payload=payload, error=error,
                error_class=cls,
                traceback=tb or f"{error} (no worker traceback)",
                attempts=attempt.attempt, timeouts=attempt.timeouts,
                deaths=attempt.deaths,
                quarantined=attempt.quarantined,
            ))

        def handle_result(worker_id: int, seq: int, out: Any) -> None:
            worker = workers.get(worker_id)
            if worker is None or worker.current is None \
                    or worker.current.seq != seq:
                return  # stale: sender was reaped after this job moved on
            attempt = worker.release()
            problem = validate(out) if validate is not None else None
            if problem is not None:
                attempt.quarantined.append(
                    f"attempt {attempt.attempt}: {problem}")
                fail_or_retry(attempt, f"corrupt-result: {problem}")
            elif isinstance(out, dict) and out.get("error"):
                fail_or_retry(attempt, out["error"], payload=out,
                              tb=out.get("traceback", ""))
            else:
                finish(JobOutcome(
                    seq=seq, payload=out, attempts=attempt.attempt,
                    timeouts=attempt.timeouts, deaths=attempt.deaths,
                    quarantined=attempt.quarantined,
                ))

        def drain_nowait() -> None:
            while True:
                try:
                    worker_id, seq, out = result_q.get_nowait()
                except Empty:
                    return
                handle_result(worker_id, seq, out)

        try:
            for _ in range(min(self.n_workers, len(pending))):
                spawn()

            while len(outcomes) < len(payloads):
                drain_nowait()  # keeps the death check below race-free

                now = time.monotonic()
                for worker in list(workers.values()):
                    busy = worker.current is not None
                    if busy and worker.deadline is not None \
                            and now >= worker.deadline:
                        # deadline blown: kill the worker, requeue or fail
                        worker.reap()
                        del workers[worker.worker_id]
                        attempt = worker.release()
                        attempt.timeouts += 1
                        fail_or_retry(
                            attempt,
                            f"timeout: cell exceeded {timeout:g}s "
                            f"(attempt {attempt.attempt})")
                        spawn()
                    elif busy and not worker.proc.is_alive():
                        # died without a result (crash / OOM / segfault);
                        # SIGKILL with no supervisor reap is, on Linux,
                        # almost always the kernel OOM killer — classify
                        # it as memory pressure, not generic death
                        del workers[worker.worker_id]
                        attempt = worker.release()
                        attempt.deaths += 1
                        exitcode = worker.proc.exitcode
                        if exitcode == -signal.SIGKILL:
                            error = (f"oom-kill: worker killed by SIGKILL "
                                     f"before returning "
                                     f"(attempt {attempt.attempt})")
                        else:
                            error = (f"worker-death: worker exited with "
                                     f"code {exitcode} before returning "
                                     f"(attempt {attempt.attempt})")
                        fail_or_retry(attempt, error)
                        spawn()

                now = time.monotonic()
                for worker in workers.values():
                    if worker.current is not None or not pending:
                        continue
                    ready = next((a for a in pending if a.not_before <= now),
                                 None)
                    if ready is None:  # all remaining are backing off
                        break
                    pending.remove(ready)
                    worker.assign(ready, None if timeout is None
                                  else now + timeout)

                if len(outcomes) < len(payloads):
                    try:
                        worker_id, seq, out = result_q.get(
                            timeout=_POLL_SECONDS)
                    except Empty:
                        continue
                    handle_result(worker_id, seq, out)
        except BaseException:
            # interrupt / SIGTERM path: leave no orphan workers behind
            for worker in workers.values():
                worker.reap()
            workers.clear()
            raise
        finally:
            for worker in workers.values():
                worker.retire()
            result_q.close()
            result_q.join_thread()

        return [outcomes[seq] for seq in range(len(payloads))]
