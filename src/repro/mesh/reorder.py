"""Vertex reordering strategies: the unstructured analogue of a layout.

A structured grid changes layout by changing an indexing formula; a mesh
changes "layout" by *renumbering its vertices* — an explicit
preprocessing pass.  Strategies:

* ``identity`` — whatever order the mesher produced;
* ``random`` — the adversarial baseline;
* ``morton`` / ``hilbert`` — sort vertices along an SFC over their
  quantized coordinates (the standard mesh-locality optimization, and
  the unstructured face of the paper's idea);
* ``bfs`` — breadth-first over the adjacency from vertex 0 (a
  Cuthill–McKee-flavoured graph ordering that needs no geometry).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict

import numpy as np

from ..core.hilbert import hilbert_encode
from ..core.morton import morton_encode_3d
from .mesh import TetraMesh

__all__ = ["reorder", "ORDERINGS", "ordering_permutation"]

_QUANT_BITS = 10  # 1024^3 quantization lattice for the SFC sorts


def _quantize(points: np.ndarray) -> tuple:
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    q = ((points - lo) / span * ((1 << _QUANT_BITS) - 1)).astype(np.uint64)
    return q[:, 0], q[:, 1], q[:, 2]


def _perm_identity(mesh: TetraMesh, seed: int) -> np.ndarray:
    return np.arange(mesh.n_vertices, dtype=np.int64)


def _perm_random(mesh: TetraMesh, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).permutation(mesh.n_vertices)


def _perm_morton(mesh: TetraMesh, seed: int) -> np.ndarray:
    i, j, k = _quantize(mesh.points)
    return np.argsort(morton_encode_3d(i, j, k), kind="stable")


def _perm_hilbert(mesh: TetraMesh, seed: int) -> np.ndarray:
    i, j, k = _quantize(mesh.points)
    codes = hilbert_encode(
        (i.astype(np.int64), j.astype(np.int64), k.astype(np.int64)),
        _QUANT_BITS)
    return np.argsort(codes, kind="stable")


def _perm_bfs(mesh: TetraMesh, seed: int) -> np.ndarray:
    n = mesh.n_vertices
    visited = np.zeros(n, dtype=bool)
    order = []
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([start])
        while queue:
            v = queue.popleft()
            order.append(v)
            for nb in mesh.neighbors(v):
                if not visited[nb]:
                    visited[nb] = True
                    queue.append(nb)
    return np.asarray(order, dtype=np.int64)


ORDERINGS: Dict[str, Callable[[TetraMesh, int], np.ndarray]] = {
    "identity": _perm_identity,
    "random": _perm_random,
    "morton": _perm_morton,
    "hilbert": _perm_hilbert,
    "bfs": _perm_bfs,
}


def ordering_permutation(mesh: TetraMesh, strategy: str,
                         seed: int = 0) -> np.ndarray:
    """The vertex permutation a strategy would apply to ``mesh``."""
    try:
        fn = ORDERINGS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown ordering {strategy!r}; known: {sorted(ORDERINGS)}"
        ) from None
    return fn(mesh, seed)


def reorder(mesh: TetraMesh, strategy: str, seed: int = 0) -> TetraMesh:
    """Renumber ``mesh`` by the named strategy (same geometry, new order)."""
    return mesh.permute(ordering_permutation(mesh, strategy, seed))
