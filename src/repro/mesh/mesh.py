"""Unstructured tetrahedral meshes with CSR vertex adjacency.

The paper's conclusion argues SFC layouts are "unlikely as readily
applicable to unstructured data"; its reference [13] (Jones et al.) is
feature-preserving *mesh* smoothing.  This subpackage builds the
substrate to test both: a tetrahedral mesh type whose vertex storage
order is an explicit, permutable choice — for structured grids the
layout is an indexing formula, but for meshes it is a *reordering* pass,
which is exactly the practical difference the conclusion points at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["TetraMesh"]


class TetraMesh:
    """A tetrahedral mesh: vertex coordinates + cells + CSR adjacency.

    Parameters
    ----------
    points : (n, 3) float array
        Vertex coordinates, in *storage order* — the order a smoothing
        sweep walks and the order coordinates sit in memory.
    cells : (m, 4) int array
        Tetrahedra as vertex indices.
    """

    def __init__(self, points: np.ndarray, cells: np.ndarray):
        self.points = np.asarray(points, dtype=np.float64)
        self.cells = np.asarray(cells, dtype=np.int64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("points must be (n, 3)")
        if self.cells.ndim != 2 or self.cells.shape[1] != 4:
            raise ValueError("cells must be (m, 4)")
        if self.cells.size and (self.cells.min() < 0
                                or self.cells.max() >= len(self.points)):
            raise ValueError("cell indices out of range")
        self.indptr, self.indices = self._build_adjacency()

    def _build_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """Vertex adjacency (CSR) from tetra edges, symmetric, deduped."""
        n = len(self.points)
        if self.cells.size == 0:
            return np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
        pairs = []
        for a in range(4):
            for b in range(a + 1, 4):
                pairs.append(self.cells[:, [a, b]])
        edges = np.concatenate(pairs)
        edges = np.concatenate([edges, edges[:, ::-1]])
        # dedupe (src, dst) pairs
        key = edges[:, 0] * n + edges[:, 1]
        _, unique_idx = np.unique(key, return_index=True)
        edges = edges[unique_idx]
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        edges = edges[order]
        counts = np.bincount(edges[:, 0], minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, edges[:, 1].copy()

    # -- queries ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Vertex count."""
        return len(self.points)

    @property
    def n_cells(self) -> int:
        """Tetrahedron count."""
        return len(self.cells)

    @property
    def n_edges(self) -> int:
        """Undirected edge count."""
        return self.indices.size // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacent vertex ids of vertex ``v``."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def valences(self) -> np.ndarray:
        """Per-vertex neighbour counts."""
        return np.diff(self.indptr)

    # -- reordering -----------------------------------------------------------------

    def permute(self, perm: np.ndarray) -> "TetraMesh":
        """Renumber vertices: new vertex ``i`` is old vertex ``perm[i]``.

        ``perm`` must be a permutation of ``range(n_vertices)``; the
        returned mesh represents the identical geometry with a different
        storage order.
        """
        perm = np.asarray(perm, dtype=np.int64)
        n = self.n_vertices
        if perm.shape != (n,) or not np.array_equal(np.sort(perm),
                                                    np.arange(n)):
            raise ValueError("perm must be a permutation of the vertex ids")
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n)
        return TetraMesh(self.points[perm], inverse[self.cells])

    # -- the smoothing sweep's memory stream ------------------------------------------

    def sweep_read_ids(self) -> np.ndarray:
        """Vertex ids read by one smoothing sweep, in access order.

        The sweep walks vertices in storage order; for each it reads its
        own coordinates, then each neighbour's — the gather loop of any
        umbrella-operator smoother (Laplacian, Taubin, Jones-style
        bilateral).
        """
        own = np.arange(self.n_vertices, dtype=np.int64)
        return np.insert(self.indices, self.indptr[:-1], own)

    def sweep_element_offsets(self) -> np.ndarray:
        """Float-element offsets of the sweep (3 floats per vertex read)."""
        ids = self.sweep_read_ids()
        return (ids[:, None] * 3 + np.arange(3)[None, :]).ravel()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TetraMesh(vertices={self.n_vertices}, "
                f"cells={self.n_cells}, edges={self.n_edges})")
