"""Mesh generation: Delaunay tetrahedralizations of synthetic point sets.

Real unstructured meshes arrive in whatever order the mesher emitted —
typically with poor locality.  We generate meshes two ways:

* :func:`random_delaunay` — uniform random points in the unit cube,
  tetrahedralized with scipy's Delaunay; vertex order is the random
  generation order (the pessimistic, realistic case);
* :func:`perturbed_grid_delaunay` — a jittered lattice, which yields a
  more regular mesh whose natural order is scanline-ish.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from .mesh import TetraMesh

__all__ = ["random_delaunay", "perturbed_grid_delaunay"]


def random_delaunay(n_points: int, seed: int = 0) -> TetraMesh:
    """Delaunay mesh of ``n_points`` uniform random points in [0, 1]³."""
    if n_points < 5:
        raise ValueError(f"need at least 5 points, got {n_points}")
    rng = np.random.default_rng(seed)
    points = rng.random((n_points, 3))
    tri = Delaunay(points)
    return TetraMesh(points, tri.simplices)


def perturbed_grid_delaunay(side: int, jitter: float = 0.25,
                            seed: int = 0) -> TetraMesh:
    """Delaunay mesh of a ``side³`` lattice with ``jitter``-scaled noise.

    Lattice spacing is ``1/side``; jitter is a fraction of the spacing
    (≤ 0.49 keeps points distinct).  Vertex order is the lattice scan
    order (x fastest).
    """
    if side < 2:
        raise ValueError(f"side must be >= 2, got {side}")
    if not 0 <= jitter < 0.5:
        raise ValueError(f"jitter must be in [0, 0.5), got {jitter}")
    rng = np.random.default_rng(seed)
    axis = (np.arange(side) + 0.5) / side
    z, y, x = np.meshgrid(axis, axis, axis, indexing="ij")
    points = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
    points += rng.uniform(-jitter, jitter, points.shape) / side
    tri = Delaunay(points)
    return TetraMesh(points, tri.simplices)
