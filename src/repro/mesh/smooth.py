"""Mesh smoothing: Laplacian and feature-preserving (Jones et al. flavor).

The paper's reference [13] is non-iterative feature-preserving mesh
smoothing — the unstructured sibling of the bilateral filter.  We
implement the umbrella-operator family:

* :func:`laplacian_smooth` — each vertex moves toward its neighbour
  centroid (isotropic, shrinks features);
* :func:`bilateral_smooth` — neighbour influence additionally weighted
  by a Gaussian in *coordinate distance*, the robust-estimation idea of
  bilateral filtering applied to vertex positions: distant (outlier)
  neighbours barely pull, so sharp features survive.

Both smooth via the same per-vertex gather the trace path models
(``TetraMesh.sweep_element_offsets``); both are order-invariant — the
result does not depend on the vertex storage order, only the memory
traffic does, which is the whole point of the E11 study.
"""

from __future__ import annotations

import numpy as np

from .mesh import TetraMesh

__all__ = ["laplacian_smooth", "bilateral_smooth", "taubin_smooth"]


def _neighbor_sums(mesh: TetraMesh, values: np.ndarray,
                   weights: np.ndarray = None):
    """Σ_w neighbour values (and Σ w) per vertex, via CSR segments."""
    src = mesh.indices
    contrib = values[src] if weights is None else values[src] * weights[:, None]
    sums = np.add.reduceat(contrib, mesh.indptr[:-1], axis=0)
    # reduceat misbehaves for empty segments; zero them explicitly
    empty = np.diff(mesh.indptr) == 0
    if empty.any():
        sums[empty] = 0.0
    if weights is None:
        return sums, np.diff(mesh.indptr).astype(np.float64)
    wsums = np.add.reduceat(weights, mesh.indptr[:-1])
    if empty.any():
        wsums[empty] = 0.0
    return sums, wsums


def laplacian_smooth(mesh: TetraMesh, lam: float = 0.5,
                     sweeps: int = 1) -> np.ndarray:
    """Umbrella-operator smoothing: p' = (1-λ)p + λ·mean(neighbours).

    Returns the smoothed coordinate array; the mesh is not mutated.
    """
    if not 0 < lam <= 1:
        raise ValueError(f"lam must be in (0, 1], got {lam}")
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")
    pts = mesh.points.copy()
    for _ in range(sweeps):
        sums, counts = _neighbor_sums(mesh, pts)
        mean = np.where(counts[:, None] > 0, sums / np.maximum(
            counts[:, None], 1.0), pts)
        pts = (1.0 - lam) * pts + lam * mean
    return pts


def taubin_smooth(mesh: TetraMesh, lam: float = 0.33, mu: float = -0.34,
                  sweeps: int = 1) -> np.ndarray:
    """Taubin λ|μ smoothing: a shrink pass then an inflate pass per sweep.

    The classic fix for Laplacian shrinkage: alternate a positive-λ
    umbrella step with a negative-μ one (|μ| slightly above λ), which
    acts as a low-pass filter on the surface without contracting it.
    """
    if not 0 < lam <= 1:
        raise ValueError(f"lam must be in (0, 1], got {lam}")
    if not -1 <= mu < 0:
        raise ValueError(f"mu must be in [-1, 0), got {mu}")
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")
    pts = mesh.points.copy()
    for _ in range(sweeps):
        for factor in (lam, mu):
            sums, counts = _neighbor_sums(mesh, pts)
            mean = np.where(counts[:, None] > 0, sums / np.maximum(
                counts[:, None], 1.0), pts)
            pts = pts + factor * (mean - pts)
    return pts


def bilateral_smooth(mesh: TetraMesh, lam: float = 0.5,
                     sigma: float = 0.05, sweeps: int = 1) -> np.ndarray:
    """Feature-preserving smoothing with distance-Gaussian weights.

    Neighbour ``q`` of vertex ``p`` gets weight ``exp(-|q-p|²/2σ²)``;
    far-flung neighbours (across a feature) contribute little, so edges
    and corners move less than under the plain Laplacian.
    """
    if not 0 < lam <= 1:
        raise ValueError(f"lam must be in (0, 1], got {lam}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")
    pts = mesh.points.copy()
    dst = np.repeat(np.arange(mesh.n_vertices), np.diff(mesh.indptr))
    for _ in range(sweeps):
        diffs = pts[mesh.indices] - pts[dst]
        w = np.exp(-0.5 * (diffs ** 2).sum(axis=1) / sigma ** 2)
        sums, wsums = _neighbor_sums(mesh, pts, weights=w)
        safe = np.maximum(wsums, 1e-300)
        target = np.where(wsums[:, None] > 0, sums / safe[:, None], pts)
        pts = (1.0 - lam) * pts + lam * target
    return pts
