"""Unstructured-mesh extension: testing the paper's conclusion claim.

The conclusion says SFC layouts are "unlikely as readily applicable to
unstructured data".  This subpackage makes the claim measurable: a
tetrahedral-mesh substrate (scipy Delaunay), vertex reordering
strategies (identity / random / Morton / Hilbert / BFS), the Jones-cite
smoothing kernels, and the same trace-to-simulator path the structured
kernels use — so E11 can compare orderings on real cache models.
"""

from .generate import perturbed_grid_delaunay, random_delaunay
from .mesh import TetraMesh
from .reorder import ORDERINGS, ordering_permutation, reorder
from .smooth import bilateral_smooth, laplacian_smooth, taubin_smooth

__all__ = [
    "ORDERINGS",
    "TetraMesh",
    "bilateral_smooth",
    "laplacian_smooth",
    "ordering_permutation",
    "perturbed_grid_delaunay",
    "random_delaunay",
    "reorder",
    "taubin_smooth",
]
