"""The paper's two studied kernels plus supporting rendering math.

* :class:`~repro.kernels.bilateral.BilateralFilter3D` — structured
  stencil access (Section III-A);
* :class:`~repro.kernels.volrend.RaycastRenderer` — semi-structured ray
  sampling (Section III-B);
* cameras, reconstruction filters, transfer functions, plain Gaussian
  convolution, and gradient shading as building blocks/extensions.
"""

from .acceleration import MinMaxBricks
from .bilateral import STENCIL_LABELS, BilateralFilter3D, BilateralSpec
from .bilateral2d import Bilateral2DSpec, BilateralFilter2D
from .camera import Camera, generate_rays, orbit_camera
from .convolution import GaussianConvolution3D, GaussianSpec
from .gradient import gradient_at, gradient_dense, lambert_shade
from .jacobi import Jacobi3D, JacobiSpec
from .sampling import sample_nearest, sample_trilinear
from .transfer import (
    TransferFunction,
    grayscale_ramp,
    isosurface_like,
    sparse_ramp,
    warm_ramp,
)
from .volrend import RaycastRenderer, RenderSpec, TileResult, ray_box_intersect

__all__ = [
    "STENCIL_LABELS",
    "Bilateral2DSpec",
    "BilateralFilter2D",
    "BilateralFilter3D",
    "BilateralSpec",
    "Camera",
    "GaussianConvolution3D",
    "GaussianSpec",
    "Jacobi3D",
    "JacobiSpec",
    "MinMaxBricks",
    "RaycastRenderer",
    "RenderSpec",
    "TileResult",
    "TransferFunction",
    "generate_rays",
    "gradient_at",
    "gradient_dense",
    "grayscale_ramp",
    "isosurface_like",
    "lambert_shade",
    "orbit_camera",
    "ray_box_intersect",
    "sample_nearest",
    "sample_trilinear",
    "sparse_ramp",
    "warm_ramp",
]
