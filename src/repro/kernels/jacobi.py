"""7-point Jacobi stencil — the classic HPC stencil the paper's intro cites.

The paper motivates its study with stencil computations at large (its
Section II cites Datta et al.'s stencil auto-tuning work); the bilateral
filter is a heavyweight member of that family.  This module adds the
family's canonical lightweight member: the 7-point Jacobi relaxation

    D(i,j,k) = (1-6w)·S(i,j,k) + w·(S(i±1,j,k)+S(i,j±1,k)+S(i,j,k±1))

with Dirichlet (clamped) boundaries, iterated for a configurable number
of sweeps.  Compared to the bilateral filter it has a far higher
memory-to-compute ratio, so layout effects show up even more nakedly —
extension experiment A10 checks that the paper's conclusion generalizes
to it.

The ping-pong sweep structure also introduces *temporal* reuse between
sweeps (absent in the single-pass bilateral filter), exercising a cache
behaviour dimension the paper's kernels do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.grid import Grid
from ..core.layout import Layout
from ..memsim.address import AddressSpace
from ..memsim.trace import TraceChunk, concat_chunks
from ..parallel.pencil import Pencil, enumerate_pencils, pencil_coords

__all__ = ["JacobiSpec", "Jacobi3D"]

#: The 7-point star: center plus face neighbours, in the iteration
#: order a straightforward loop nest produces (center, ±x, ±y, ±z).
_STAR = np.array(
    [[0, 0, 0], [-1, 0, 0], [1, 0, 0],
     [0, -1, 0], [0, 1, 0], [0, 0, -1], [0, 0, 1]],
    dtype=np.int64,
)


@dataclass(frozen=True)
class JacobiSpec:
    """Relaxation parameters.

    Attributes
    ----------
    weight : float
        Neighbour weight ``w``; stability requires ``0 < w <= 1/6``.
    sweeps : int
        Number of Jacobi iterations.
    """

    weight: float = 1.0 / 6.0
    sweeps: int = 1

    def __post_init__(self):
        if not 0 < self.weight <= 1.0 / 6.0 + 1e-12:
            raise ValueError(f"weight must be in (0, 1/6], got {self.weight}")
        if self.sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {self.sweeps}")


class Jacobi3D:
    """7-point Jacobi relaxation with layout-transparent access."""

    def __init__(self, spec: JacobiSpec):
        self.spec = spec

    # -- per-pencil machinery --------------------------------------------------

    def _pencil_taps(self, shape, pencil: Pencil):
        """Tap coordinates for one pencil: clamped at the boundary
        (Dirichlet via clamp keeps every tap in bounds, so the stream is
        uniform across voxels)."""
        i0, j0, k0 = pencil_coords(pencil, shape)
        ii = np.clip(i0[:, None] + _STAR[None, :, 0], 0, shape[0] - 1)
        jj = np.clip(j0[:, None] + _STAR[None, :, 1], 0, shape[1] - 1)
        kk = np.clip(k0[:, None] + _STAR[None, :, 2], 0, shape[2] - 1)
        return ii, jj, kk

    def pencil_values(self, grid: Grid, pencil: Pencil) -> np.ndarray:
        """One sweep's output values along one pencil."""
        ii, jj, kk = self._pencil_taps(grid.shape, pencil)
        vals = grid.gather(ii, jj, kk).astype(np.float64)
        w = self.spec.weight
        return (1.0 - 6.0 * w) * vals[:, 0] + w * vals[:, 1:].sum(axis=1)

    def pencil_trace(self, grid: Grid, pencil: Pencil,
                     space: AddressSpace) -> TraceChunk:
        """Access stream of one pencil for one sweep (7 loads/voxel)."""
        ii, jj, kk = self._pencil_taps(grid.shape, pencil)
        offs = grid.offsets(ii.ravel(), jj.ravel(), kk.ravel())
        return TraceChunk.from_offsets(
            offs, grid.itemsize, space.line_bytes,
            base_bytes=space.register(grid), n_ops=offs.size)

    def multi_sweep_trace(self, grid: Grid, pencil: Pencil,
                          space: AddressSpace) -> TraceChunk:
        """The pencil's stream repeated over all sweeps.

        Between sweeps the roles of the two ping-pong buffers swap; the
        read stream geometry is identical each sweep (we model both
        buffers at distinct base addresses, alternating).
        """
        shadow = self._shadow_grid(grid, space)
        chunks = []
        for sweep in range(self.spec.sweeps):
            source = grid if sweep % 2 == 0 else shadow
            chunks.append(self.pencil_trace(source, pencil, space))
        return concat_chunks(chunks)

    def _shadow_grid(self, grid: Grid, space: AddressSpace) -> Grid:
        """The ping-pong partner buffer (registered, never materialized
        with data — only its addresses matter to the simulator)."""
        key = (id(grid), "jacobi-shadow")
        cache = getattr(space, "_jacobi_shadows", None)
        if cache is None:
            cache = {}
            space._jacobi_shadows = cache
        if key not in cache:
            cache[key] = Grid(grid.layout, dtype=grid.dtype)
        return cache[key]

    # -- whole-volume paths -------------------------------------------------------

    def apply(self, grid: Grid, out_layout: Optional[Layout] = None) -> Grid:
        """Run all sweeps via the pencil value path (ping-pong buffered)."""
        current = grid
        for _ in range(self.spec.sweeps):
            out = Grid(out_layout or current.layout, dtype=current.dtype)
            if out.layout.shape != current.shape:
                raise ValueError("output layout shape must match input shape")
            for pencil in enumerate_pencils(current.shape, 0):
                i, j, k = pencil_coords(pencil, current.shape)
                out.scatter(i, j, k, self.pencil_values(current, pencil))
            current = out
        return current

    def apply_dense(self, dense: np.ndarray) -> np.ndarray:
        """Dense reference via clamped shifts (no layout involvement)."""
        out = np.asarray(dense, dtype=np.float64)
        w = self.spec.weight
        for _ in range(self.spec.sweeps):
            padded = np.pad(out, 1, mode="edge")
            out = (1.0 - 6.0 * w) * out + w * (
                padded[:-2, 1:-1, 1:-1] + padded[2:, 1:-1, 1:-1]
                + padded[1:-1, :-2, 1:-1] + padded[1:-1, 2:, 1:-1]
                + padded[1:-1, 1:-1, :-2] + padded[1:-1, 1:-1, 2:]
            )
        return out
