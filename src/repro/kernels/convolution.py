"""Plain 3-D Gaussian convolution — the bilateral filter's first stage.

The paper describes the bilateral filter as "essentially a two-stage
operation involving first an N×N×N Gaussian convolution kernel followed
by a normalization step".  The plain convolution is provided standalone:
it shares the stencil/pencil machinery, is independently verifiable
against ``scipy.ndimage``, and serves as a compute-light baseline whose
access stream is identical to the bilateral filter's (the stream depends
only on the stencil geometry, not the weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.grid import Grid
from ..core.layout import Layout
from ..memsim.address import AddressSpace
from ..memsim.trace import TraceChunk
from ..parallel.pencil import Pencil, enumerate_pencils, pencil_coords
from .bilateral import BilateralFilter3D, BilateralSpec

__all__ = ["GaussianSpec", "GaussianConvolution3D"]


@dataclass(frozen=True)
class GaussianSpec:
    """Stencil radius, Gaussian width, and iteration order."""

    radius: int = 1
    sigma: float = 1.5
    stencil_order: str = "xyz"

    def __post_init__(self):
        if self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.stencil_order not in ("xyz", "zyx"):
            raise ValueError(f"bad stencil_order {self.stencil_order!r}")

    @property
    def edge(self) -> int:
        """Stencil edge length."""
        return 2 * self.radius + 1


class GaussianConvolution3D:
    """Truncated-at-border, normalized Gaussian smoothing.

    Implemented by delegating geometry to :class:`BilateralFilter3D`
    with the photometric term disabled (``sigma_range → ∞`` makes
    ``c(i, ibar) ≡ 1``), which is also the identity the tests exploit.
    """

    def __init__(self, spec: GaussianSpec):
        self.spec = spec
        self._bilateral = BilateralFilter3D(BilateralSpec(
            radius=spec.radius,
            sigma_spatial=spec.sigma,
            sigma_range=1e30,  # photometric weight ≡ 1
            stencil_order=spec.stencil_order,
        ))

    def pencil_values(self, grid: Grid, pencil: Pencil) -> np.ndarray:
        """Smoothed values of one pencil."""
        return self._bilateral.pencil_values(grid, pencil)

    def pencil_trace(self, grid: Grid, pencil: Pencil,
                     space: AddressSpace) -> TraceChunk:
        """Access stream of one pencil (identical to the bilateral's)."""
        return self._bilateral.pencil_trace(grid, pencil, space)

    def apply(self, grid: Grid, out_layout: Optional[Layout] = None) -> Grid:
        """Smooth a whole grid."""
        return self._bilateral.apply(grid, out_layout)

    def apply_dense(self, dense: np.ndarray) -> np.ndarray:
        """Dense reference path."""
        return self._bilateral.apply_dense(dense)
