"""Transfer functions: scalar field value → RGBA for compositing.

Piecewise-linear lookup over a control-point list, the standard volume
rendering formulation (Levoy 1988, Drebin et al. 1988 — the paper's
refs [15], [16]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["TransferFunction", "grayscale_ramp", "warm_ramp", "sparse_ramp",
           "isosurface_like"]


@dataclass(frozen=True)
class TransferFunction:
    """Piecewise-linear RGBA transfer function.

    Control points are ``(value, r, g, b, a)`` tuples with values
    ascending over the expected scalar range; lookups interpolate
    linearly and clamp outside the range.
    """

    points: Tuple[Tuple[float, float, float, float, float], ...]

    def __post_init__(self):
        if len(self.points) < 2:
            raise ValueError("need at least two control points")
        vals = [p[0] for p in self.points]
        if any(b <= a for a, b in zip(vals, vals[1:])):
            raise ValueError("control-point values must be strictly ascending")

    def __call__(self, scalars: np.ndarray) -> np.ndarray:
        """RGBA (n, 4) for scalar values (n,)."""
        scalars = np.asarray(scalars, dtype=np.float64)
        xs = np.array([p[0] for p in self.points])
        out = np.empty(scalars.shape + (4,), dtype=np.float64)
        for c in range(4):
            ys = np.array([p[c + 1] for p in self.points])
            out[..., c] = np.interp(scalars, xs, ys)
        return out


def grayscale_ramp(vmin: float = 0.0, vmax: float = 1.0,
                   max_alpha: float = 0.6) -> TransferFunction:
    """Luminance and opacity both ramp linearly from vmin to vmax."""
    return TransferFunction(points=(
        (vmin, 0.0, 0.0, 0.0, 0.0),
        (vmax, 1.0, 1.0, 1.0, max_alpha),
    ))


def warm_ramp(vmin: float = 0.0, vmax: float = 1.0) -> TransferFunction:
    """Black → red → yellow → white ramp, opacity emphasizing high values.

    A combustion-ish palette for the turbulence dataset.
    """
    span = vmax - vmin
    return TransferFunction(points=(
        (vmin, 0.0, 0.0, 0.0, 0.0),
        (vmin + 0.35 * span, 0.6, 0.05, 0.0, 0.02),
        (vmin + 0.65 * span, 1.0, 0.55, 0.0, 0.25),
        (vmax, 1.0, 1.0, 0.85, 0.8),
    ))


def sparse_ramp(threshold: float = 0.4, vmax: float = 1.0,
                max_alpha: float = 0.7) -> TransferFunction:
    """Exactly-zero opacity below ``threshold``, then a linear ramp.

    The classification-friendly preset: empty-space skipping can only
    skip where the transfer function is *identically* transparent, which
    ramps anchored at the data minimum never are.
    """
    if not 0.0 < threshold < vmax:
        raise ValueError(f"threshold must be in (0, {vmax}), got {threshold}")
    return TransferFunction(points=(
        (0.0, 0.0, 0.0, 0.0, 0.0),
        (threshold, 0.2, 0.2, 0.25, 0.0),
        (vmax, 1.0, 0.9, 0.7, max_alpha),
    ))


def isosurface_like(iso: float, width: float = 0.05,
                    rgba: Sequence[float] = (0.9, 0.9, 1.0, 0.9)
                    ) -> TransferFunction:
    """Opacity bump around an isovalue (surface-like rendering)."""
    r, g, b, a = rgba
    lo = iso - width
    hi = iso + width
    return TransferFunction(points=(
        (lo - 1e-9, r, g, b, 0.0),
        (iso, r, g, b, a),
        (hi + 1e-9, r, g, b, 0.0),
    ))
