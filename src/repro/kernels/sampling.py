"""Volume reconstruction through the layout interface.

Samplers take continuous positions (in voxel coordinates) and return
both reconstructed values and the *element offsets they read*, so the
renderer's value path and stream path stay in lockstep: every simulated
load corresponds to a value actually used.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.grid import Grid

__all__ = ["sample_nearest", "sample_trilinear"]


def sample_nearest(grid: Grid, pts: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-neighbour reconstruction at positions ``pts`` (n, 3).

    Returns ``(values, offsets)`` where ``offsets`` has one element
    offset per sample, in sample order.
    """
    pts = np.asarray(pts, dtype=np.float64)
    nx, ny, nz = grid.shape
    i = np.clip(np.rint(pts[:, 0]).astype(np.int64), 0, nx - 1)
    j = np.clip(np.rint(pts[:, 1]).astype(np.int64), 0, ny - 1)
    k = np.clip(np.rint(pts[:, 2]).astype(np.int64), 0, nz - 1)
    offs = grid.offsets(i, j, k)
    return grid.buffer[offs].astype(np.float64), offs


def sample_trilinear(grid: Grid, pts: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Trilinear reconstruction at positions ``pts`` (n, 3).

    Returns ``(values, offsets)`` where ``offsets`` has shape ``(n * 8,)``:
    the 8 cell-corner reads per sample in c000, c100, c010, c110, c001,
    c101, c011, c111 order (x fastest), flattened sample-major — the
    load order of a straightforward inner loop.
    """
    pts = np.asarray(pts, dtype=np.float64)
    nx, ny, nz = grid.shape
    # cell base (clamped so the +1 corner stays in bounds)
    base = np.floor(pts).astype(np.int64)
    base[:, 0] = np.clip(base[:, 0], 0, max(nx - 2, 0))
    base[:, 1] = np.clip(base[:, 1], 0, max(ny - 2, 0))
    base[:, 2] = np.clip(base[:, 2], 0, max(nz - 2, 0))
    frac = np.clip(pts - base, 0.0, 1.0)
    fx, fy, fz = frac[:, 0], frac[:, 1], frac[:, 2]

    n = pts.shape[0]
    corner_offsets = np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0],
         [0, 0, 1], [1, 0, 1], [0, 1, 1], [1, 1, 1]],
        dtype=np.int64,
    )
    ii = base[:, 0:1] + corner_offsets[:, 0][None, :]
    jj = base[:, 1:2] + corner_offsets[:, 1][None, :]
    kk = base[:, 2:3] + corner_offsets[:, 2][None, :]
    if nx == 1:
        ii[:] = 0
    if ny == 1:
        jj[:] = 0
    if nz == 1:
        kk[:] = 0
    offs = grid.offsets(ii.ravel(), jj.ravel(), kk.ravel())
    vals = grid.buffer[offs].reshape(n, 8).astype(np.float64)

    wx = np.stack([1 - fx, fx], axis=1)
    wy = np.stack([1 - fy, fy], axis=1)
    wz = np.stack([1 - fz, fz], axis=1)
    # weight for corner (a, b, c) is wx[a] * wy[b] * wz[c]
    w = (
        wx[:, corner_offsets[:, 0]]
        * wy[:, corner_offsets[:, 1]]
        * wz[:, corner_offsets[:, 2]]
    )
    return (vals * w).sum(axis=1), offs
