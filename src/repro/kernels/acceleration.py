"""Empty-space skipping: min–max brick acceleration for the raycaster.

Production volume renderers do not sample homogeneous empty space: a
coarse grid of per-brick scalar min/max bounds is consulted per sample,
and samples whose brick cannot produce opacity under the active transfer
function are skipped.  This module provides that structure and its
transfer-function classification; :class:`~repro.kernels.volrend.RenderSpec`
takes the result via ``skip_space``.

Interplay with the layout study (extension A15): skipping removes
exactly the samples whose loads are cheapest to predict (long empty
runs), so it shrinks the total traffic while leaving the hard,
semi-structured loads — the layout comparison survives, on a smaller
denominator.  The classification itself is conservative:

* for nearest-neighbour sampling, a sample's value lies inside its own
  brick's [min, max], so per-brick bounds are exact;
* for trilinear sampling, corner reads can cross brick borders, so the
  query dilates the bounds over the 3³ brick neighbourhood
  (``footprint=1``) — still conservative, never wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.grid import Grid
from .transfer import TransferFunction

__all__ = ["MinMaxBricks"]


class MinMaxBricks:
    """Per-brick scalar bounds over a grid, with opacity classification.

    Parameters
    ----------
    grid : Grid
        The volume to summarize (values are read through the layout, so
        construction works behind any layout).
    brick : int
        Brick edge length in voxels (the structure has
        ``ceil(n/brick)³`` entries).
    """

    def __init__(self, grid: Grid, brick: int = 8):
        if brick < 1:
            raise ValueError(f"brick must be >= 1, got {brick}")
        self.brick = int(brick)
        self.shape = grid.shape
        dense = grid.to_dense().astype(np.float64)
        nx, ny, nz = self.shape
        b = self.brick
        gx, gy, gz = -(-nx // b), -(-ny // b), -(-nz // b)
        self.grid_shape = (gx, gy, gz)
        self.mins = np.full(self.grid_shape, np.inf)
        self.maxs = np.full(self.grid_shape, -np.inf)
        for bi in range(gx):
            for bj in range(gy):
                for bk in range(gz):
                    sub = dense[bi * b:(bi + 1) * b,
                                bj * b:(bj + 1) * b,
                                bk * b:(bk + 1) * b]
                    self.mins[bi, bj, bk] = sub.min()
                    self.maxs[bi, bj, bk] = sub.max()

    @property
    def n_bricks(self) -> int:
        """Total brick count."""
        gx, gy, gz = self.grid_shape
        return gx * gy * gz

    def classify(self, transfer: TransferFunction,
                 footprint: int = 0,
                 samples_per_brick: int = 64,
                 eps: float = 1e-12) -> np.ndarray:
        """Boolean activity per brick: can the TF produce opacity here?

        A brick is *active* when the transfer function's alpha exceeds
        ``eps`` anywhere in the brick's (footprint-dilated) value range,
        probed at ``samples_per_brick`` evenly spaced values plus the TF
        control points falling inside the range (so narrow isosurface
        bumps cannot slip between probes).
        """
        if footprint < 0:
            raise ValueError(f"footprint must be >= 0, got {footprint}")
        lo, hi = self.mins, self.maxs
        if footprint:
            from scipy import ndimage

            size = 2 * footprint + 1
            lo = ndimage.minimum_filter(lo, size=size, mode="nearest")
            hi = ndimage.maximum_filter(hi, size=size, mode="nearest")
        control_values = np.array([p[0] for p in transfer.points])
        active = np.zeros(self.grid_shape, dtype=bool)
        for idx in np.ndindex(self.grid_shape):
            vmin, vmax = lo[idx], hi[idx]
            probes = np.linspace(vmin, vmax, samples_per_brick)
            inside = control_values[(control_values >= vmin)
                                    & (control_values <= vmax)]
            if inside.size:
                probes = np.concatenate([probes, inside])
            if transfer(probes)[:, 3].max() > eps:
                active[idx] = True
        return active

    def active_mask_for_points(self, pts: np.ndarray,
                               active: np.ndarray) -> np.ndarray:
        """Per-sample activity: is each position's brick active?

        ``pts`` is (..., 3) in voxel coordinates; returns a boolean
        array of the leading shape.
        """
        b = self.brick
        nx, ny, nz = self.shape
        i = np.clip(np.rint(pts[..., 0]).astype(np.int64), 0, nx - 1) // b
        j = np.clip(np.rint(pts[..., 1]).astype(np.int64), 0, ny - 1) // b
        k = np.clip(np.rint(pts[..., 2]).astype(np.int64), 0, nz - 1) // b
        return active[i, j, k]

    def structure_offsets(self, pts: np.ndarray) -> np.ndarray:
        """Element offsets of the per-sample structure lookups.

        The min–max grid is itself memory the renderer reads (one entry
        per sample, heavily line-collapsed in practice); callers can
        feed these through the simulator at the structure's own base
        address for full honesty.
        """
        b = self.brick
        gx, gy, _ = self.grid_shape
        nx, ny, nz = self.shape
        i = np.clip(np.rint(pts[..., 0]).astype(np.int64), 0, nx - 1) // b
        j = np.clip(np.rint(pts[..., 1]).astype(np.int64), 0, ny - 1) // b
        k = np.clip(np.rint(pts[..., 2]).astype(np.int64), 0, nz - 1) // b
        return (i + gx * (j + gy * k)).ravel()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MinMaxBricks(shape={self.shape}, brick={self.brick}, "
                f"bricks={self.grid_shape})")
