"""2-D bilateral filter — the original Tomasi & Manduchi formulation.

The paper's reference [11] introduced bilateral filtering for 2-D
images; the 3-D volume filter studied in the paper is its extension.
This 2-D version completes the family: it runs on
:class:`~repro.core.grid2d.Grid2D` behind any 2-D layout (row-major,
Morton, Hilbert), provides the same value/stream dual paths, and lets
image-processing users of the library apply the layout study to their
own workloads (scanline vs Z-order image storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.grid2d import Grid2D
from ..core.layout import Layout2D
from ..memsim.trace import TraceChunk

__all__ = ["Bilateral2DSpec", "BilateralFilter2D"]


@dataclass(frozen=True)
class Bilateral2DSpec:
    """2-D filter parameters (see :class:`~repro.kernels.bilateral.BilateralSpec`)."""

    radius: int = 2
    sigma_spatial: float = 2.0
    sigma_range: float = 0.1
    scan_order: str = "xy"

    def __post_init__(self):
        if self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        if self.scan_order not in ("xy", "yx"):
            raise ValueError(f"scan_order must be 'xy' or 'yx', got "
                             f"{self.scan_order!r}")
        if self.sigma_spatial <= 0 or self.sigma_range <= 0:
            raise ValueError("sigmas must be positive")

    @property
    def edge(self) -> int:
        """Stencil edge length ``2*radius + 1``."""
        return 2 * self.radius + 1


class BilateralFilter2D:
    """Edge-preserving 2-D smoothing with layout-transparent access."""

    def __init__(self, spec: Bilateral2DSpec):
        self.spec = spec
        r = spec.radius
        span = np.arange(-r, r + 1, dtype=np.int64)
        if spec.scan_order == "xy":
            dy, dx = np.meshgrid(span, span, indexing="ij")
        else:
            dx, dy = np.meshgrid(span, span, indexing="ij")
        self._dx = dx.ravel()
        self._dy = dy.ravel()
        d2 = self._dx.astype(np.float64) ** 2 + self._dy.astype(np.float64) ** 2
        self._g = np.exp(-0.5 * d2 / spec.sigma_spatial ** 2)

    def _row_taps(self, shape: Tuple[int, int], row: int):
        """Tap coordinates and validity for one image row (fixed j=row)."""
        nx, ny = shape
        i0 = np.arange(nx, dtype=np.int64)
        ii = i0[:, None] + self._dx[None, :]
        jj = np.full(nx, row, dtype=np.int64)[:, None] + self._dy[None, :]
        valid = (ii >= 0) & (ii < nx) & (jj >= 0) & (jj < ny)
        return ii, jj, valid

    def row_values(self, grid: Grid2D, row: int) -> np.ndarray:
        """Filtered values of image row ``row`` (the value path)."""
        shape = grid.shape
        ii, jj, valid = self._row_taps(shape, row)
        ic = np.clip(ii, 0, shape[0] - 1)
        jc = np.clip(jj, 0, shape[1] - 1)
        neigh = grid.gather(ic, jc).astype(np.float64)
        center = grid.gather(
            np.arange(shape[0], dtype=np.int64),
            np.full(shape[0], row, dtype=np.int64),
        ).astype(np.float64)[:, None]
        w = self._g[None, :] * np.exp(
            -0.5 * ((neigh - center) / self.spec.sigma_range) ** 2)
        w = np.where(valid, w, 0.0)
        return (w * neigh).sum(axis=1) / w.sum(axis=1)

    def row_trace(self, grid: Grid2D, row: int, line_bytes: int = 64,
                  base_bytes: int = 0) -> TraceChunk:
        """Access stream of one image row (the stream path)."""
        ii, jj, valid = self._row_taps(grid.shape, row)
        flat = valid.ravel()
        offs = grid.offsets(ii.ravel()[flat], jj.ravel()[flat])
        return TraceChunk.from_offsets(
            offs, grid.itemsize, line_bytes, base_bytes=base_bytes,
            n_ops=int(flat.sum()))

    def apply(self, grid: Grid2D, out_layout: Optional[Layout2D] = None
              ) -> Grid2D:
        """Filter a whole image row by row."""
        out = Grid2D(out_layout or grid.layout, dtype=grid.dtype)
        if out.layout.shape != grid.shape:
            raise ValueError("output layout shape must match input shape")
        nx, ny = grid.shape
        i = np.arange(nx, dtype=np.int64)
        for row in range(ny):
            out.scatter(i, np.full(nx, row, dtype=np.int64),
                        self.row_values(grid, row))
        return out

    def apply_dense(self, dense: np.ndarray) -> np.ndarray:
        """Dense shifted-slice reference (no layout involvement)."""
        dense = np.asarray(dense, dtype=np.float64)
        nx, ny = dense.shape
        acc = np.zeros_like(dense)
        norm = np.zeros_like(dense)
        sr2 = 2.0 * self.spec.sigma_range ** 2
        for t in range(self._dx.size):
            dx, dy = int(self._dx[t]), int(self._dy[t])
            xs, xe = max(0, -dx), min(nx, nx - dx)
            ys, ye = max(0, -dy), min(ny, ny - dy)
            if xs >= xe or ys >= ye:
                continue
            src = dense[xs + dx:xe + dx, ys + dy:ye + dy]
            ctr = dense[xs:xe, ys:ye]
            w = self._g[t] * np.exp(-((src - ctr) ** 2) / sr2)
            acc[xs:xe, ys:ye] += w * src
            norm[xs:xe, ys:ye] += w
        return acc / norm
