"""3-D bilateral filter (Section III-A): the structured-access kernel.

The bilateral filter (Tomasi & Manduchi 1998, extended to volumes) is an
edge-preserving smoother: each output voxel is the weighted average of
its stencil neighbourhood, with weights the product of a *geometric*
Gaussian ``g`` (distance in space, Eq. 3) and a *photometric* Gaussian
``c`` (distance in value), normalized by ``k(i)`` (Eq. 2):

    D(i) = (1 / k(i)) * sum_ibar g(i, ibar) * c(i, ibar) * S(ibar)
    k(i) = sum_ibar g(i, ibar) * c(i, ibar)

Stencil taps falling outside the volume are skipped (the normalization
absorbs the truncation at borders).

The class exposes both faces of the study:

* a **value path** — numpy-vectorized computation of the filtered
  volume (per pencil via layout-mediated gathers, or densely via
  shifted slices as an independent reference);
* a **stream path** — the exact per-pencil sequence of stencil reads
  the paper's C implementation performs, in the configured stencil
  iteration order (``xyz`` = innermost loop over x, the array-friendly
  order; ``zyx`` = innermost loop over z, the deliberately
  against-the-grain order), which feeds the memory simulator.

Paper stencil labels: ``r1`` → 3³, ``r3`` → 5³, ``r5`` → 11³.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.grid import Grid
from ..core.layout import Layout
from ..instrument import trace as _trace
from ..memsim.address import AddressSpace
from ..memsim.trace import TraceChunk
from ..parallel.pencil import Pencil, pencil_coords

__all__ = ["BilateralSpec", "BilateralFilter3D", "STENCIL_LABELS"]

#: Paper's row labels → stencil radius (stencil edge = 2*radius + 1).
STENCIL_LABELS = {"r1": 1, "r3": 2, "r5": 5}


@dataclass(frozen=True)
class BilateralSpec:
    """Filter parameters.

    Attributes
    ----------
    radius : int
        Stencil radius; the stencil is ``(2*radius + 1)**3`` taps.
    sigma_spatial : float
        Geometric Gaussian width (Eq. 3's sigma), in voxels.
    sigma_range : float
        Photometric Gaussian width, in value units.
    stencil_order : {"xyz", "zyx"}
        Innermost-to-outermost iteration order of the stencil loops.
        Affects the access stream only, never the arithmetic result.
    """

    radius: int = 1
    sigma_spatial: float = 1.5
    sigma_range: float = 0.2
    stencil_order: str = "xyz"

    def __post_init__(self):
        if self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        if self.stencil_order not in ("xyz", "zyx"):
            raise ValueError(
                f"stencil_order must be 'xyz' or 'zyx', got {self.stencil_order!r}"
            )
        if self.sigma_spatial <= 0 or self.sigma_range <= 0:
            raise ValueError("sigma_spatial and sigma_range must be positive")

    @property
    def edge(self) -> int:
        """Stencil edge length ``2*radius + 1``."""
        return 2 * self.radius + 1

    @property
    def n_taps(self) -> int:
        """Taps per output voxel."""
        return self.edge ** 3


class BilateralFilter3D:
    """Bilateral filter with layout-transparent access (paper Section III)."""

    def __init__(self, spec: BilateralSpec):
        self.spec = spec
        self._dx, self._dy, self._dz = self._tap_offsets()
        # Geometric weights g depend only on the offset; precompute
        # (the paper notes the g portion of k(i) is precomputable).
        d2 = (self._dx.astype(np.float64) ** 2
              + self._dy.astype(np.float64) ** 2
              + self._dz.astype(np.float64) ** 2)
        self._g = np.exp(-0.5 * d2 / spec.sigma_spatial ** 2)

    def _tap_offsets(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stencil offsets in the configured iteration order.

        ``xyz``: dx varies fastest (innermost loop over x);
        ``zyx``: dz varies fastest (innermost loop over z).
        """
        r = self.spec.radius
        span = np.arange(-r, r + 1, dtype=np.int64)
        if self.spec.stencil_order == "xyz":
            dz, dy, dx = np.meshgrid(span, span, span, indexing="ij")
        else:
            dx, dy, dz = np.meshgrid(span, span, span, indexing="ij")
        return dx.ravel(), dy.ravel(), dz.ravel()

    # -- per-pencil machinery ---------------------------------------------------

    def _pencil_taps(self, shape, pencil: Pencil):
        """Neighbour coordinates and validity mask for one pencil.

        Returns ``(ii, jj, kk, valid)`` of shape ``(n_voxels, n_taps)``
        where row ``v`` lists output voxel ``v``'s taps in stencil order.
        """
        i0, j0, k0 = pencil_coords(pencil, shape)
        ii = i0[:, None] + self._dx[None, :]
        jj = j0[:, None] + self._dy[None, :]
        kk = k0[:, None] + self._dz[None, :]
        nx, ny, nz = shape
        valid = (
            (ii >= 0) & (ii < nx)
            & (jj >= 0) & (jj < ny)
            & (kk >= 0) & (kk < nz)
        )
        return ii, jj, kk, valid

    def pencil_values(self, grid: Grid, pencil: Pencil) -> np.ndarray:
        """Filtered values of one pencil (the value path)."""
        shape = grid.shape
        ii, jj, kk, valid = self._pencil_taps(shape, pencil)
        # Clamp invalid taps to a safe coordinate, then zero their weight.
        ic = np.clip(ii, 0, shape[0] - 1)
        jc = np.clip(jj, 0, shape[1] - 1)
        kc = np.clip(kk, 0, shape[2] - 1)
        neigh = grid.gather(ic, jc, kc).astype(np.float64)
        i0, j0, k0 = pencil_coords(pencil, shape)
        center = grid.gather(i0, j0, k0).astype(np.float64)[:, None]
        w = self._g[None, :] * np.exp(
            -0.5 * ((neigh - center) / self.spec.sigma_range) ** 2
        )
        w = np.where(valid, w, 0.0)
        k_norm = w.sum(axis=1)
        return (w * neigh).sum(axis=1) / k_norm

    def pencil_trace(self, grid: Grid, pencil: Pencil,
                     space: AddressSpace,
                     out_grid: Optional[Grid] = None) -> TraceChunk:
        """Access stream of one pencil (the stream path).

        The stream is voxel-major, tap-minor in the configured stencil
        order, skipping out-of-bounds taps — exactly the loads of the C
        loop nest.  One op per tap is charged for the compute model.

        When ``out_grid`` is given, the store of each output voxel is
        appended after its taps (write-allocate caches treat the store
        like a read of the target line), so the trace carries the full
        read+write traffic of the loop nest.
        """
        with _trace.span("bilateral.pencil", axis=pencil.axis) as sp:
            shape = grid.shape
            ii, jj, kk, valid = self._pencil_taps(shape, pencil)
            flat = valid.ravel()
            offs = grid.offsets(ii.ravel()[flat], jj.ravel()[flat],
                                kk.ravel()[flat])
            from ..memsim.trace import collapse_consecutive, offsets_to_lines

            read_lines = offsets_to_lines(offs, grid.itemsize, space.line_bytes,
                                          space.register(grid))
            n_ops = int(flat.sum())
            if out_grid is None:
                lines = read_lines
            else:
                i0, j0, k0 = pencil_coords(pencil, shape)
                w_offs = out_grid.offsets(i0, j0, k0)
                write_lines = offsets_to_lines(
                    w_offs, out_grid.itemsize, space.line_bytes,
                    space.register(out_grid))
                # each voxel's store lands right after its last tap
                insert_at = np.cumsum(valid.sum(axis=1))
                lines = np.insert(read_lines, insert_at, write_lines)
                n_ops += write_lines.size
            collapsed, removed = collapse_consecutive(lines)
            sp.add("voxels", valid.shape[0])
            sp.add("taps", n_ops)
            sp.add("lines", collapsed.size)
            return TraceChunk(lines=collapsed, collapsed_hits=removed,
                              n_ops=n_ops)

    # -- whole-volume value paths -------------------------------------------------

    def apply(self, grid: Grid, out_layout: Optional[Layout] = None,
              pencil_axis: int = 0) -> Grid:
        """Filter a whole grid via the pencil value path.

        Mirrors the parallel decomposition (pencils along
        ``pencil_axis``) but computes serially; results are identical to
        :meth:`apply_dense` and independent of ``pencil_axis``.
        """
        from ..parallel.pencil import enumerate_pencils

        out = Grid(out_layout or grid.layout, dtype=grid.dtype)
        if out.layout.shape != grid.shape:
            raise ValueError("output layout shape must match input grid shape")
        for pencil in enumerate_pencils(grid.shape, pencil_axis):
            i, j, k = pencil_coords(pencil, grid.shape)
            out.scatter(i, j, k, self.pencil_values(grid, pencil))
        return out

    def apply_dense(self, dense: np.ndarray) -> np.ndarray:
        """Independent dense reference via shifted-slice accumulation.

        Used by tests to validate the gather-based path; O(n_taps) numpy
        slice operations, no layout involvement.
        """
        dense = np.asarray(dense, dtype=np.float64)
        nx, ny, nz = dense.shape
        acc = np.zeros_like(dense)
        norm = np.zeros_like(dense)
        r = self.spec.radius
        sr2 = 2.0 * self.spec.sigma_range ** 2
        for t in range(self._dx.size):
            dx, dy, dz = int(self._dx[t]), int(self._dy[t]), int(self._dz[t])
            # destination region (centres whose tap stays in bounds)
            xs, xe = max(0, -dx), min(nx, nx - dx)
            ys, ye = max(0, -dy), min(ny, ny - dy)
            zs, ze = max(0, -dz), min(nz, nz - dz)
            if xs >= xe or ys >= ye or zs >= ze:
                continue
            src = dense[xs + dx:xe + dx, ys + dy:ye + dy, zs + dz:ze + dz]
            ctr = dense[xs:xe, ys:ye, zs:ze]
            w = self._g[t] * np.exp(-((src - ctr) ** 2) / sr2)
            acc[xs:xe, ys:ye, zs:ze] += w * src
            norm[xs:xe, ys:ye, zs:ze] += w
        return acc / norm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.spec
        return (
            f"BilateralFilter3D(edge={s.edge}, sigma_s={s.sigma_spatial}, "
            f"sigma_r={s.sigma_range}, order={s.stencil_order})"
        )
