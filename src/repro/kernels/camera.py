"""Cameras and the paper's 8-viewpoint orbit (Section IV-B4).

The volume-rendering tests orbit the viewpoint around the dataset
centre; at viewpoints 0 and 4 the rays run parallel to the x axis (the
fastest-varying axis of the array-order layout, the friendly case), and
in between they are increasingly misaligned.  We orbit in the x–y plane
with z up, so the alignment schedule matches the paper's Figure 4/5
description exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Camera", "orbit_camera", "generate_rays"]


def _normalize(v: np.ndarray) -> np.ndarray:
    n = np.linalg.norm(v, axis=-1, keepdims=True)
    return v / np.where(n == 0, 1.0, n)


@dataclass(frozen=True)
class Camera:
    """A pinhole (perspective) or parallel (orthographic) camera.

    Attributes
    ----------
    eye : (3,) float
        Camera position in volume coordinates (voxel units).
    center : (3,) float
        Look-at point.
    up : (3,) float
        Approximate up direction.
    width, height : int
        Output image size in pixels.
    fov_y_deg : float
        Vertical field of view (perspective).
    projection : {"perspective", "orthographic"}
        The paper measures perspective (per-ray unique slopes, the
        "semi-structured" pattern); orthographic is provided for the
        structured limit.
    ortho_height : float
        World-space image height for orthographic projection.
    """

    eye: Tuple[float, float, float]
    center: Tuple[float, float, float]
    up: Tuple[float, float, float] = (0.0, 0.0, 1.0)
    width: int = 256
    height: int = 256
    fov_y_deg: float = 30.0
    projection: str = "perspective"
    ortho_height: float = 0.0

    def __post_init__(self):
        if self.projection not in ("perspective", "orthographic"):
            raise ValueError(f"unknown projection {self.projection!r}")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.projection == "orthographic" and self.ortho_height <= 0:
            raise ValueError("orthographic projection needs ortho_height > 0")

    @property
    def aspect(self) -> float:
        """Width / height."""
        return self.width / self.height

    def basis(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Orthonormal (forward, right, up) triple."""
        eye = np.asarray(self.eye, dtype=np.float64)
        ctr = np.asarray(self.center, dtype=np.float64)
        fwd = _normalize(ctr - eye)
        right = _normalize(np.cross(fwd, np.asarray(self.up, dtype=np.float64)))
        true_up = np.cross(right, fwd)
        return fwd, right, true_up


def orbit_camera(volume_shape: Sequence[int], viewpoint: int,
                 n_viewpoints: int = 8, width: int = 256, height: int = 256,
                 distance_factor: float = 2.5, fov_y_deg: float = 30.0,
                 projection: str = "perspective") -> Camera:
    """Camera at orbit position ``viewpoint`` of ``n_viewpoints``.

    Viewpoint 0 sits on the +x axis looking in −x (rays ∥ x, the
    array-order-friendly alignment); viewpoint ``n/2`` sits on −x.  The
    orbit runs counter-clockwise in the x–y plane at a radius of
    ``distance_factor`` × the largest volume extent.
    """
    if not 0 <= viewpoint < n_viewpoints:
        raise ValueError(f"viewpoint {viewpoint} out of range 0..{n_viewpoints - 1}")
    shape = np.asarray(volume_shape, dtype=np.float64)
    center = (shape - 1.0) / 2.0
    radius = distance_factor * float(shape.max())
    theta = 2.0 * np.pi * viewpoint / n_viewpoints
    eye = center + radius * np.array([np.cos(theta), np.sin(theta), 0.0])
    return Camera(
        eye=tuple(eye),
        center=tuple(center),
        up=(0.0, 0.0, 1.0),
        width=width,
        height=height,
        fov_y_deg=fov_y_deg,
        projection=projection,
        ortho_height=float(shape.max()) * 1.2 if projection == "orthographic" else 0.0,
    )


def generate_rays(camera: Camera, px: np.ndarray, py: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Origins and unit directions for pixels ``(px, py)``.

    Pixel centres are sampled (the +0.5 convention); ``py`` grows upward
    in image space.  Returns ``(origins, dirs)`` of shape ``(n, 3)``.
    In perspective projection every ray has its own slope (the paper's
    semi-structured pattern); in orthographic all slopes are identical.
    """
    px = np.asarray(px, dtype=np.float64)
    py = np.asarray(py, dtype=np.float64)
    fwd, right, up = camera.basis()
    u = (px + 0.5) / camera.width * 2.0 - 1.0
    v = (py + 0.5) / camera.height * 2.0 - 1.0
    if camera.projection == "perspective":
        half_h = np.tan(np.radians(camera.fov_y_deg) / 2.0)
        half_w = half_h * camera.aspect
        dirs = (
            fwd[None, :]
            + (u * half_w)[:, None] * right[None, :]
            + (v * half_h)[:, None] * up[None, :]
        )
        dirs = _normalize(dirs)
        origins = np.broadcast_to(
            np.asarray(camera.eye, dtype=np.float64), dirs.shape
        ).copy()
        return origins, dirs
    half_h = camera.ortho_height / 2.0
    half_w = half_h * camera.aspect
    origins = (
        np.asarray(camera.eye, dtype=np.float64)[None, :]
        + (u * half_w)[:, None] * right[None, :]
        + (v * half_h)[:, None] * up[None, :]
    )
    dirs = np.broadcast_to(fwd, origins.shape).copy()
    return origins, dirs
