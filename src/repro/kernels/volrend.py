"""Raycasting volume renderer (Section III-B): the semi-structured kernel.

Image-order volume rendering: for every output pixel, cast a ray from
the eye through the pixel, sample the scalar field along the ray inside
the volume, classify each sample through a transfer function, and
composite front-to-back.  With perspective projection every ray has a
unique slope, so every ray traverses memory differently — the paper's
"semi-structured" access pattern, and the reason array-order performance
swings with viewpoint while Z-order stays flat.

As with the bilateral filter, the renderer exposes a numpy value path
(actual pixels, testable against analytic fields) and a stream path
(the exact sample-load sequence per tile) that drives the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.grid import Grid
from ..instrument import trace as _trace
from ..memsim.address import AddressSpace
from ..memsim.trace import TraceChunk
from ..parallel.tiles import Tile, tile_pixels
from .camera import Camera, generate_rays
from .sampling import sample_nearest, sample_trilinear
from .transfer import TransferFunction

__all__ = ["RenderSpec", "ray_box_intersect", "RaycastRenderer", "TileResult"]


@dataclass(frozen=True)
class RenderSpec:
    """Raycasting parameters.

    Attributes
    ----------
    step : float
        Sample spacing along the ray, in voxel units.
    sampler : {"nearest", "trilinear"}
        Reconstruction filter.  ``nearest`` loads one element per
        sample; ``trilinear`` loads the 8 cell corners.
    early_termination : float or None
        Stop a ray once accumulated opacity exceeds this threshold
        (None = off, the measured configuration: it keeps the access
        stream independent of the data values).
    max_steps : int
        Hard per-ray cap (guards against degenerate step sizes).
    """

    step: float = 1.0
    sampler: str = "nearest"
    early_termination: Optional[float] = None
    max_steps: int = 4096

    def __post_init__(self):
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")
        if self.sampler not in ("nearest", "trilinear"):
            raise ValueError(f"unknown sampler {self.sampler!r}")
        if self.early_termination is not None and not 0 < self.early_termination <= 1:
            raise ValueError("early_termination must be in (0, 1]")
        if self.max_steps <= 0:
            raise ValueError("max_steps must be positive")


def ray_box_intersect(origins: np.ndarray, dirs: np.ndarray,
                      lo: np.ndarray, hi: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Slab-method ray/AABB intersection, vectorized over rays.

    Returns ``(t_near, t_far)``; a ray misses the box when
    ``t_near >= t_far`` or ``t_far <= 0``.  ``t_near`` is clamped to 0
    (rays starting inside the box sample from their origin).
    """
    origins = np.asarray(origins, dtype=np.float64)
    dirs = np.asarray(dirs, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / dirs
        t0 = (lo[None, :] - origins) * inv
        t1 = (hi[None, :] - origins) * inv
    # where dirs == 0: ray parallel to slab; inside test via +-inf from numpy
    tmin = np.minimum(t0, t1)
    tmax = np.maximum(t0, t1)
    # parallel rays outside the slab produce nan; treat as miss
    tmin = np.where(np.isnan(tmin), -np.inf, tmin)
    tmax = np.where(np.isnan(tmax), np.inf, tmax)
    t_near = np.maximum(tmin.max(axis=1), 0.0)
    t_far = tmax.min(axis=1)
    return t_near, t_far


@dataclass
class TileResult:
    """Output of rendering one tile.

    Attributes
    ----------
    rgba : np.ndarray or None
        ``(h, w, 4)`` pixel values (None when values were skipped).
    trace : TraceChunk or None
        The tile's access stream (None when no address space was given).
    n_samples : int
        Composited samples (the renderer's op count).
    """

    rgba: Optional[np.ndarray]
    trace: Optional[TraceChunk]
    n_samples: int


class RaycastRenderer:
    """Perspective/orthographic raycaster over a layout-backed grid.

    Parameters
    ----------
    grid, transfer, spec : see :class:`RenderSpec`.
    skip : MinMaxBricks, optional
        Empty-space-skipping structure (see
        :mod:`repro.kernels.acceleration`).  Samples whose brick cannot
        produce opacity under ``transfer`` are neither loaded nor
        composited; the classification footprint automatically covers
        trilinear corner reads.
    """

    def __init__(self, grid: Grid, transfer: TransferFunction,
                 spec: Optional[RenderSpec] = None, skip=None):
        self.grid = grid
        self.transfer = transfer
        self.spec = spec or RenderSpec()
        shape = np.asarray(grid.shape, dtype=np.float64)
        self._lo = np.zeros(3)
        self._hi = shape - 1.0
        self.skip = skip
        self._skip_active = None
        if skip is not None:
            footprint = 1 if self.spec.sampler == "trilinear" else 0
            self._skip_active = skip.classify(transfer, footprint=footprint)

    # -- geometry ----------------------------------------------------------------

    def _sample_positions(self, camera: Camera, px: np.ndarray, py: np.ndarray):
        """Per-ray sample positions on a padded (n_rays, max_steps) lattice.

        Returns ``(pts, valid)``: ``pts`` is (n_rays, steps, 3) with
        invalid entries clamped to the first valid sample (they are
        masked out of both value and trace paths by ``valid``).
        """
        origins, dirs = generate_rays(camera, px, py)
        t_near, t_far = ray_box_intersect(origins, dirs, self._lo, self._hi)
        hit = t_far > t_near
        # missed rays can carry infinite slab parameters; zero them so the
        # masked position arithmetic below stays finite
        t_near = np.where(hit, t_near, 0.0)
        span = np.where(hit, t_far - t_near, 0.0)
        n_steps = np.minimum(
            np.ceil(span / self.spec.step).astype(np.int64), self.spec.max_steps
        )
        max_steps = int(n_steps.max()) if n_steps.size else 0
        if max_steps == 0:
            pts = np.zeros((origins.shape[0], 0, 3))
            valid = np.zeros((origins.shape[0], 0), dtype=bool)
            return pts, valid
        s = np.arange(max_steps, dtype=np.float64)
        t = t_near[:, None] + (s[None, :] + 0.5) * self.spec.step
        valid = s[None, :] < n_steps[:, None]
        t = np.where(valid, t, t_near[:, None])
        pts = origins[:, None, :] + t[:, :, None] * dirs[:, None, :]
        np.clip(pts, self._lo, self._hi, out=pts)
        return pts, valid

    # -- main entry ----------------------------------------------------------------

    def render_pixels(self, camera: Camera, px: np.ndarray, py: np.ndarray,
                      space: Optional[AddressSpace] = None,
                      want_values: bool = True) -> TileResult:
        """Render a pixel list; optionally also emit the access stream.

        The stream is ray-major, sample-minor (each pixel's ray is
        integrated to completion before the next pixel starts), matching
        the paper's per-pixel outer loop.
        """
        spec = self.spec
        pts, valid = self._sample_positions(camera, px, py)
        n_rays, max_steps, _ = pts.shape
        struct_trace = None
        if self._skip_active is not None:
            # the structure lookup happens for every in-volume sample;
            # only active-brick samples proceed to load and composite
            if space is not None and valid.any():
                struct_offs = self.skip.structure_offsets(
                    pts.reshape(-1, 3)[valid.ravel()])
                base = space.register_object(self.skip, self.skip.n_bricks * 8)
                struct_trace = TraceChunk.from_offsets(
                    struct_offs, 8, space.line_bytes, base_bytes=base)
            valid = valid & self.skip.active_mask_for_points(
                pts, self._skip_active)
        flat_valid = valid.ravel()
        flat_pts = pts.reshape(-1, 3)[flat_valid]

        sampler = sample_nearest if spec.sampler == "nearest" else sample_trilinear
        if flat_pts.shape[0]:
            values, offsets = sampler(self.grid, flat_pts)
        else:
            values = np.empty(0)
            offsets = np.empty(0, dtype=np.int64)

        scalars = np.zeros(n_rays * max_steps, dtype=np.float64)
        scalars[flat_valid] = values
        scalars = scalars.reshape(n_rays, max_steps)

        rgba_img = None
        term_step = np.full(n_rays, max_steps, dtype=np.int64)
        need_compositing = want_values or spec.early_termination is not None
        if need_compositing and max_steps:
            rgba = self.transfer(scalars)
            # opacity correction for the sample spacing
            alpha = 1.0 - np.power(1.0 - np.clip(rgba[..., 3], 0.0, 1.0), spec.step)
            alpha = np.where(valid, alpha, 0.0)
            color_acc = np.zeros((n_rays, 3))
            alpha_acc = np.zeros(n_rays)
            for s in range(max_steps):
                w = (1.0 - alpha_acc) * alpha[:, s]
                color_acc += w[:, None] * rgba[:, s, :3]
                alpha_acc += w
                if spec.early_termination is not None:
                    newly = (alpha_acc >= spec.early_termination) & (term_step == max_steps)
                    term_step[newly] = s + 1
            rgba_img = np.concatenate([color_acc, alpha_acc[:, None]], axis=1)
        elif need_compositing:
            rgba_img = np.zeros((n_rays, 4))

        if spec.early_termination is not None and max_steps:
            # truncate both the op count and the trace at termination
            step_idx = np.broadcast_to(
                np.arange(max_steps)[None, :], (n_rays, max_steps)
            )
            valid = valid & (step_idx < term_step[:, None])
            flat_valid_t = valid.ravel()
            if spec.sampler == "trilinear":
                keep = np.repeat(flat_valid_t[flat_valid], 8)
            else:
                keep = flat_valid_t[flat_valid]
            offsets = offsets[keep]

        n_samples = int(valid.sum())
        trace = None
        if space is not None:
            base = space.register(self.grid)
            trace = TraceChunk.from_offsets(
                offsets, self.grid.itemsize, space.line_bytes,
                base_bytes=base, n_ops=n_samples,
            )
            if struct_trace is not None:
                from ..memsim.trace import concat_chunks

                trace = concat_chunks([struct_trace, trace])
        return TileResult(
            rgba=rgba_img if want_values else None,
            trace=trace,
            n_samples=n_samples,
        )

    def render_tile(self, camera: Camera, tile: Tile,
                    space: Optional[AddressSpace] = None,
                    want_values: bool = True, ray_step: int = 1) -> TileResult:
        """Render one image tile (optionally subsampling rays by ``ray_step``)."""
        with _trace.span("volrend.tile", x0=tile.x0, y0=tile.y0) as sp:
            px, py = tile_pixels(tile, step=ray_step)
            result = self.render_pixels(camera, px, py, space=space,
                                        want_values=want_values)
            if result.rgba is not None and ray_step == 1:
                result.rgba = result.rgba.reshape(tile.h, tile.w, 4)
            sp.add("rays", px.size)
            sp.add("samples", result.n_samples)
            if result.trace is not None:
                sp.add("lines", result.trace.lines.size)
            return result

    def render_image(self, camera: Camera) -> np.ndarray:
        """Render the full image; returns ``(height, width, 4)`` RGBA."""
        px, py = np.meshgrid(
            np.arange(camera.width), np.arange(camera.height), indexing="xy"
        )
        result = self.render_pixels(camera, px.ravel(), py.ravel())
        return result.rgba.reshape(camera.height, camera.width, 4)
