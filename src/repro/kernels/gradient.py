"""Central-difference gradients and Lambertian shading (renderer extension).

Volume renderers commonly shade samples with the local scalar gradient
as a surface normal (Levoy 1988).  Gradient estimation reads 6 extra
neighbours per sample, tripling the renderer's memory pressure — a
useful stress variant for the layout study, benchmarked as an
extension.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.grid import Grid

__all__ = ["gradient_at", "lambert_shade", "gradient_dense"]


def gradient_at(grid: Grid, i: np.ndarray, j: np.ndarray, k: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Central-difference gradient at integer voxel coordinates.

    One-sided differences at volume borders.  Returns ``(grads, offsets)``
    with ``grads`` of shape (n, 3) and ``offsets`` the 6 neighbour reads
    per point, point-major, in ±x, ±y, ±z order.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    nx, ny, nz = grid.shape
    ip, im = np.minimum(i + 1, nx - 1), np.maximum(i - 1, 0)
    jp, jm = np.minimum(j + 1, ny - 1), np.maximum(j - 1, 0)
    kp, km = np.minimum(k + 1, nz - 1), np.maximum(k - 1, 0)
    # neighbour coordinate table, point-major: (+x, -x, +y, -y, +z, -z)
    ii = np.stack([ip, im, i, i, i, i], axis=1)
    jj = np.stack([j, j, jp, jm, j, j], axis=1)
    kk = np.stack([k, k, k, k, kp, km], axis=1)
    offs = grid.offsets(ii.ravel(), jj.ravel(), kk.ravel())
    vals = grid.buffer[offs].reshape(-1, 6).astype(np.float64)
    # spacing is 2 in the interior, 1 at the borders
    hx = (ip - im).astype(np.float64)
    hy = (jp - jm).astype(np.float64)
    hz = (kp - km).astype(np.float64)
    gx = (vals[:, 0] - vals[:, 1]) / np.where(hx == 0, 1.0, hx)
    gy = (vals[:, 2] - vals[:, 3]) / np.where(hy == 0, 1.0, hy)
    gz = (vals[:, 4] - vals[:, 5]) / np.where(hz == 0, 1.0, hz)
    return np.stack([gx, gy, gz], axis=1), offs


def lambert_shade(colors: np.ndarray, grads: np.ndarray,
                  light_dir: np.ndarray, ambient: float = 0.3) -> np.ndarray:
    """Lambertian shading: scale colors by ambient + diffuse(|N·L|).

    Gradient magnitude below 1e-12 leaves the color unshaded (no
    meaningful normal in homogeneous regions).
    """
    light = np.asarray(light_dir, dtype=np.float64)
    light = light / np.linalg.norm(light)
    norm = np.linalg.norm(grads, axis=1)
    safe = np.where(norm < 1e-12, 1.0, norm)
    ndotl = np.abs(grads @ light) / safe
    factor = np.where(norm < 1e-12, 1.0, ambient + (1.0 - ambient) * ndotl)
    return colors * factor[:, None]


def gradient_dense(dense: np.ndarray) -> np.ndarray:
    """Dense central-difference gradient (reference; wraps ``np.gradient``)."""
    gx, gy, gz = np.gradient(np.asarray(dense, dtype=np.float64))
    return np.stack([gx, gy, gz], axis=-1)
