"""Structured tracing: nestable spans + counters → JSON-lines files.

The paper's argument is measurement, and every perf PR on top of this
reproduction needs its costs *attributed*: where inside a cell run does
the wall time go (dataset setup? stream generation? cache replay?), and
how much traffic did each kernel unit (pencil, tile) generate?  This
module is that substrate: a deliberately small tracer in the spirit of
Chrome's trace-event format, flattened to JSON-lines so traces stream,
merge, and grep.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Instrumented code calls the
   module-level :func:`span` / :func:`add`; when no tracer is installed
   these return a shared no-op span / fall through immediately.  No
   timestamps are taken, nothing allocates but the kwargs dict.
   ``scripts/bench_trace.py`` holds this to < 5 % of a cell run.
2. **Nestable spans with counters.**  A span is a named, timed region
   with string-keyed attributes (set once) and numeric counters
   (accumulated); spans nest via a stack, and each record carries its
   parent id and depth so the tree can be rebuilt.
3. **Process-merge friendly.**  Worker processes trace into their own
   :class:`Tracer` and ship finished records back (they are plain
   dicts); :meth:`Tracer.absorb` re-tags and renumbers them into the
   parent so one ordered JSON-lines file comes out (see
   :mod:`repro.experiments.parallel`).

Typical instrumentation::

    from ..instrument import trace

    with trace.span("cell.simulate", platform=spec.name) as sp:
        result = engine.run(works)
        sp.add("accesses", result.n_accesses)

and for a one-shot run::

    tracer = trace.enable()
    run_bilateral_cell(cell)
    trace.disable()
    tracer.write_jsonl("trace.jsonl")

The tracer is process-local and not thread-safe (nothing in this
library shares a tracer across OS threads; simulated threads live in
one interpreter thread).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "TRACE_SCHEMA_VERSION",
    "enable",
    "disable",
    "activate",
    "current",
    "span",
    "add",
    "render_summary",
]

#: bumped whenever the record format changes incompatibly
TRACE_SCHEMA_VERSION = 1


class Span:
    """One open (or finished) traced region.

    Returned by :meth:`Tracer.span` as the ``with`` target; use
    :meth:`set` for one-shot attributes and :meth:`add` for numeric
    counters.  The record is appended to the tracer when the block
    exits.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "depth",
                 "t0", "t1", "attrs", "counters")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int, t0: float,
                 attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs
        self.counters: Dict[str, float] = {}

    def set(self, key: str, value) -> None:
        """Set (or overwrite) one attribute on this span."""
        self.attrs[key] = value

    def add(self, name: str, value) -> None:
        """Accumulate ``value`` into counter ``name`` on this span."""
        self.counters[name] = self.counters.get(name, 0) + value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.t1 is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {state})"

    @property
    def duration(self) -> float:
        """Span duration in seconds (0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def add(self, name: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span records; one per process (workers ship theirs back).

    Timestamps are seconds relative to the tracer's creation (its
    *epoch*), taken from :func:`time.perf_counter` — monotonic within a
    process, not comparable across processes, which is why merged files
    are ordered by ``(cell, t0)`` rather than raw time.
    """

    def __init__(self):
        self.epoch = time.perf_counter()
        self.records: List[Dict[str, Any]] = []
        #: counters accumulated outside any span
        self.counters: Dict[str, float] = {}
        self._stack: List[Span] = []
        self._next_id = 0

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            self, name, self._next_id,
            None if parent is None else parent.span_id,
            len(self._stack), time.perf_counter() - self.epoch, attrs,
        )
        self._next_id += 1
        self._stack.append(sp)
        return sp

    def add(self, name: str, value) -> None:
        """Accumulate a counter on the innermost open span (or the trace)."""
        if self._stack:
            self._stack[-1].add(name, value)
        else:
            self.counters[name] = self.counters.get(name, 0) + value

    def _finish(self, sp: Span) -> None:
        if not self._stack or self._stack[-1] is not sp:
            raise RuntimeError(
                f"span {sp.name!r} closed out of order; open stack: "
                f"{[s.name for s in self._stack]}"
            )
        self._stack.pop()
        sp.t1 = time.perf_counter() - self.epoch
        self.records.append({
            "type": "span",
            "name": sp.name,
            "id": sp.span_id,
            "parent": sp.parent_id,
            "depth": sp.depth,
            "t0": sp.t0,
            "t1": sp.t1,
            "dur": sp.t1 - sp.t0,
            "attrs": sp.attrs,
            "counters": sp.counters,
            "pid": os.getpid(),
        })

    # -- merging ------------------------------------------------------------

    def absorb(self, records: List[Dict[str, Any]], **tags) -> None:
        """Merge finished records from another tracer (e.g. a worker).

        Ids are renumbered into this tracer's id space (parent links
        preserved), and ``tags`` (typically ``cell=<index>``) are added
        to every absorbed record's attrs so merged traces stay
        attributable.
        """
        remap: Dict[int, int] = {}
        for rec in records:
            remap[rec["id"]] = self._next_id
            self._next_id += 1
        for rec in records:
            merged = dict(rec)
            merged["id"] = remap[rec["id"]]
            parent = rec.get("parent")
            merged["parent"] = remap.get(parent) if parent is not None else None
            merged["attrs"] = {**rec.get("attrs", {}), **tags}
            self.records.append(merged)

    # -- output -------------------------------------------------------------

    @staticmethod
    def _order_key(rec):
        """Merged-file ordering: by cell (untagged records first), then
        by start time, which is monotonic within each record's source
        process."""
        cell = rec.get("attrs", {}).get("cell", -1)
        return (cell, rec["t0"], rec["id"])

    def ordered_records(self) -> List[Dict[str, Any]]:
        """Records sorted by the merged-file order (see :meth:`_order_key`)."""
        return sorted(self.records, key=self._order_key)

    def write_jsonl(self, path: str) -> int:
        """Write a meta header plus one JSON object per span; returns the
        number of span records written.

        The write goes through the durability layer (atomic replace +
        sidecar integrity record) so a run killed mid-write never
        leaves a torn trace for the validators to choke on.
        """
        from ..resilience import artifacts as _artifacts

        records = self.ordered_records()
        lines = [json.dumps({
            "type": "meta",
            "schema_version": TRACE_SCHEMA_VERSION,
            "n_spans": len(records),
            "counters": self.counters,
        })]
        lines.extend(json.dumps(rec, default=_json_default)
                     for rec in records)
        _artifacts.write_text_artifact(
            path, "".join(line + "\n" for line in lines),
            kind="trace", schema_version=TRACE_SCHEMA_VERSION)
        return len(records)

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-span-name rollup: count, total/min/max duration, counters."""
        out: Dict[str, Dict[str, Any]] = {}
        for rec in self.records:
            entry = out.setdefault(rec["name"], {
                "count": 0, "total_seconds": 0.0,
                "min_seconds": float("inf"), "max_seconds": 0.0,
                "counters": {},
            })
            entry["count"] += 1
            entry["total_seconds"] += rec["dur"]
            entry["min_seconds"] = min(entry["min_seconds"], rec["dur"])
            entry["max_seconds"] = max(entry["max_seconds"], rec["dur"])
            for cname, value in rec.get("counters", {}).items():
                entry["counters"][cname] = (
                    entry["counters"].get(cname, 0) + value)
        return out


def _json_default(obj):
    """Serialize the numpy scalars that counters naturally pick up."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


# -- module-level current tracer ------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer; spans start recording."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> Optional[Tracer]:
    """Stop recording; returns the tracer that was active (if any)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def activate(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Swap the active tracer, returning the previous one (for restore)."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, tracer
    return previous


def current() -> Optional[Tracer]:
    """The active tracer, or None when tracing is disabled."""
    return _ACTIVE


def span(name: str, **attrs):
    """Open a span on the active tracer; a shared no-op when disabled.

    This is the one call instrumented code makes on its hot(ish) paths,
    so the disabled branch is a single global load and compare.
    """
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.span(name, **attrs)


def add(name: str, value) -> None:
    """Accumulate a counter on the active tracer; no-op when disabled."""
    if _ACTIVE is not None:
        _ACTIVE.add(name, value)


def render_summary(tracer: Tracer) -> str:
    """Human-readable per-phase rollup table (the ``--trace-summary`` view)."""
    rows = sorted(tracer.summary().items(),
                  key=lambda kv: kv[1]["total_seconds"], reverse=True)
    lines = [f"{'span':<24} {'count':>7} {'total (s)':>12} {'mean (ms)':>12}"]
    for name, entry in rows:
        mean_ms = entry["total_seconds"] / entry["count"] * 1e3
        lines.append(f"{name:<24} {entry['count']:>7} "
                     f"{entry['total_seconds']:>12.6f} {mean_ms:>12.3f}")
        if entry["counters"]:
            pretty = ", ".join(f"{k}={v:g}" for k, v in
                               sorted(entry["counters"].items()))
            lines.append(f"{'':<24}   {pretty}")
    return "\n".join(lines)
