"""PAPI-like event-set facade over the simulated machine counters.

Mirrors the PAPI usage pattern of the paper (Section IV-A: "we make use
of PAPI to collect a variety of hardware performance counters"):
create an event set naming the events of interest, ``start`` it before
the kernel, ``stop`` it after, read the deltas.  Events resolve to the
platform's counter wiring (``PAPI_L3_TCA`` on Ivy Bridge,
``L2_DATA_READ_MISS_MEM_FILL`` on MIC, …).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..memsim.hierarchy import Machine

__all__ = ["EventSet"]


class EventSet:
    """A named set of counters read as start/stop deltas.

    Parameters
    ----------
    machine : Machine
        The simulated machine whose counters back the events.
    events : sequence of str
        Counter names; must exist in the machine's platform wiring.
    """

    def __init__(self, machine: Machine, events: Sequence[str]):
        self.machine = machine
        self.events = list(events)
        for name in self.events:
            machine.counter(name)  # raises on unknown events, PAPI-style
        self._start: Optional[Dict[str, int]] = None
        self._last: Optional[Dict[str, int]] = None

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._start is not None

    def start(self) -> None:
        """Snapshot current counter values as the baseline."""
        if self.running:
            raise RuntimeError("event set already started")
        self._start = {name: self.machine.counter(name) for name in self.events}

    def read(self) -> Dict[str, int]:
        """Deltas since :meth:`start` without stopping."""
        if not self.running:
            raise RuntimeError("event set not started")
        return {
            name: self.machine.counter(name) - self._start[name]
            for name in self.events
        }

    def stop(self) -> Dict[str, int]:
        """Stop and return the deltas accumulated since :meth:`start`."""
        values = self.read()
        self._start = None
        self._last = values
        return values

    @property
    def last(self) -> Optional[Dict[str, int]]:
        """Deltas from the most recent completed start/stop window."""
        return self._last
