"""The paper's reporting metric: scaled relative difference (Eq. 4).

    d_s = (a - z) / z

where ``a`` is the array-order measurement and ``z`` the Z-order one.
``d_s > 0`` means array-order measured *more* (slower / more cache
traffic), i.e. Z-order wins; ``d_s < 0`` means array-order wins.  It is
"similar to, but not exactly the same as, a percentage": 0.1 ≈ 10 %
difference, 1.0 ≈ 100 %, 10.0 ≈ 1000 %.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

__all__ = ["scaled_relative_difference", "ds_dict", "speedup_from_ds",
           "derived_metrics"]


def scaled_relative_difference(a, z):
    """Eq. 4: ``(a - z) / z``.  Accepts scalars or numpy arrays.

    ``z`` must be nonzero (it is the normalizing measurement).
    """
    a = np.asarray(a, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    if np.any(z == 0):
        raise ZeroDivisionError("Z-order measurement is zero; d_s undefined")
    out = (a - z) / z
    return float(out) if out.ndim == 0 else out


def ds_dict(a_values: Mapping[str, float],
            z_values: Mapping[str, float]) -> Dict[str, float]:
    """Per-metric d_s for two measurement dicts sharing keys."""
    missing = set(a_values) ^ set(z_values)
    if missing:
        raise KeyError(f"measurement dicts disagree on keys: {sorted(missing)}")
    return {
        key: scaled_relative_difference(a_values[key], z_values[key])
        for key in a_values
    }


def speedup_from_ds(ds: float) -> float:
    """Convert a runtime d_s to the conventional speedup ``a / z = 1 + d_s``."""
    return 1.0 + float(ds)


def derived_metrics(result, line_bytes: int = 64) -> Dict[str, float]:
    """Human-facing derived metrics from a :class:`SimResult`.

    Returns a dict with:

    * ``dram_bandwidth_GBps`` — memory-served lines × line size over the
      modelled runtime;
    * ``<level>_hit_rate`` — fraction of requests reaching each level
      that it served (from the service totals, so it matches what the
      cost model charged);
    * ``mem_fraction`` — share of all requests served by DRAM.
    """
    out: Dict[str, float] = {}
    served = dict(result.level_served)
    mem = served.pop("MEM", 0.0)
    total = sum(served.values()) + mem
    if result.runtime_seconds > 0:
        out["dram_bandwidth_GBps"] = (
            mem * line_bytes / result.runtime_seconds / 1e9)
    else:
        out["dram_bandwidth_GBps"] = 0.0
    remaining = total
    # inner-to-outer ordering: level names sort lexicographically for
    # the conventional L1/L2/L3 naming this library uses throughout
    for name in sorted(served):
        count = served[name]
        reach = remaining
        out[f"{name}_hit_rate"] = count / reach if reach else 1.0
        remaining -= count
    out["mem_fraction"] = mem / total if total else 0.0
    return out
