"""Measurement facade: PAPI-style event sets and the paper's d_s metric."""

from .metrics import (
    derived_metrics,
    ds_dict,
    scaled_relative_difference,
    speedup_from_ds,
)
from .papi import EventSet

__all__ = [
    "EventSet",
    "derived_metrics",
    "ds_dict",
    "scaled_relative_difference",
    "speedup_from_ds",
]
