"""Measurement facade: metrics, PAPI-style event sets, tracing, manifests.

Three layers:

* :mod:`repro.instrument.metrics` — the paper's d_s (Eq. 4) and derived
  per-level metrics;
* :mod:`repro.instrument.papi` — PAPI-style start/stop/read event sets
  over a simulated :class:`~repro.memsim.hierarchy.Machine`;
* :mod:`repro.instrument.trace` + :mod:`repro.instrument.manifest` —
  the observability layer: structured spans/counters emitted as
  JSON-lines, and self-describing run manifests (config hash, git SHA,
  platform, seed, per-phase rollups) stamped onto experiment output.
"""

from . import trace
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    config_hash,
    git_sha,
    validate_manifest,
    validate_trace_file,
    write_manifest,
)
from .metrics import (
    derived_metrics,
    ds_dict,
    scaled_relative_difference,
    speedup_from_ds,
)
from .papi import EventSet
from .trace import TRACE_SCHEMA_VERSION, Tracer, render_summary

__all__ = [
    "EventSet",
    "MANIFEST_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "build_manifest",
    "config_hash",
    "derived_metrics",
    "ds_dict",
    "git_sha",
    "render_summary",
    "scaled_relative_difference",
    "speedup_from_ds",
    "trace",
    "validate_manifest",
    "validate_trace_file",
    "write_manifest",
]
