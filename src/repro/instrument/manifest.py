"""Run manifests: self-describing stamps for experiment results.

A *manifest* is a small JSON document written next to a trace file (or
a figure/BENCH output) that records everything needed to trust, compare
and regress the numbers later: which code (git SHA, package version),
which configuration (a stable hash of each cell's full parameter set),
which platform model and seed, and where the time went (per-phase
rollups from the tracer).  The schema is deliberately flat and
validated by hand — no external JSON-schema dependency.

The CI smoke job runs one traced cell and feeds the emitted pair
through :func:`validate_trace_file` + :func:`validate_manifest`
(``scripts/validate_trace.py``), so the formats cannot drift silently.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform as _platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, Optional

from .trace import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "config_hash",
    "git_sha",
    "build_manifest",
    "write_manifest",
    "serve_entries_from_records",
    "validate_manifest",
    "validate_trace_file",
]

#: bumped whenever the manifest layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1


def config_hash(cell) -> str:
    """Stable short hash of a cell's complete configuration.

    Dataclass ``repr`` is deterministic field order and covers nested
    dataclasses (the platform spec with all its cache geometry), so two
    cells hash equal iff every parameter matches.
    """
    if not dataclasses.is_dataclass(cell):
        raise TypeError(f"expected a dataclass cell, got {type(cell).__name__}")
    return hashlib.sha256(repr(cell).encode()).hexdigest()[:16]


def git_sha() -> Optional[str]:
    """The repository HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def _cell_entries(tracer: Tracer) -> list:
    """One manifest entry per ``cell`` span in the trace, in merge order."""
    entries = []
    for rec in tracer.ordered_records():
        if rec["name"] != "cell":
            continue
        attrs = rec.get("attrs", {})
        entries.append({
            "index": attrs.get("cell", len(entries)),
            "kind": attrs.get("kind"),
            "layout": attrs.get("layout"),
            "platform": attrs.get("platform"),
            "seed": attrs.get("seed"),
            "shape": attrs.get("shape"),
            "config_sha256": attrs.get("config"),
            "wall_seconds": attrs.get("wall_seconds", rec["dur"]),
            "counters": rec.get("counters", {}),
        })
    return entries


def _resilience_entries(tracer: Tracer) -> Dict[str, Any]:
    """The batch recovery stats :func:`repro.experiments.parallel
    .run_cells_parallel` accumulates as top-level ``resilience.*``
    counters (attempts, retries, timeouts, worker deaths, restored /
    quarantined cells) — empty when no resilience feature engaged."""
    prefix = "resilience."
    return {name[len(prefix):]: value
            for name, value in tracer.counters.items()
            if name.startswith(prefix)}


def _sanitize_entries(tracer: Tracer) -> Dict[str, Any]:
    """The access-sanitizer tallies :mod:`repro.memsim.sanitize` emits
    as ``sanitize.*`` counters (batches, accesses, validated layouts,
    violations by kind) — empty when the sanitizer was not enabled.

    The sanitizer counts from inside whatever span is open, so the
    rollup sums span counters (including cell spans merged back from
    worker processes) as well as the tracer's top-level counters."""
    prefix = "sanitize."
    entries: Dict[str, Any] = {}
    sources = [tracer.counters]
    sources.extend(rec.get("counters", {}) for rec in tracer.records)
    for counters in sources:
        for name, value in counters.items():
            if name.startswith(prefix):
                key = name[len(prefix):]
                entries[key] = entries.get(key, 0) + value
    return entries


def _serve_entries(tracer: Tracer) -> Dict[str, Any]:
    """The serving-reliability tallies :mod:`repro.serve` emits as
    ``serve.*`` counters (segments rebuilt, failovers, read repairs,
    retries, hedges, shed queries, breaker transitions) — empty when
    no serving ran.

    The store and server count from inside whatever query span is
    open, so the rollup sums span counters as well as the tracer's
    top-level counters; the ``serve.session`` span's latency rollups
    (p50/p99 ms, deadline misses) merge in as plain numeric entries,
    and a ``serve.cluster`` span's membership rollups (final map
    version, ok/rejected, residual under-replication) merge in under
    a ``cluster_`` prefix next to the ``cluster_*`` counters.
    """
    return serve_entries_from_records(tracer.records, tracer.counters)


def serve_entries_from_records(
        records: Iterable[Dict[str, Any]],
        top_counters: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Derive the manifest ``serve`` section from span records.

    ``records`` are span dicts (a tracer's in-memory records or the
    span lines of a written trace file) and ``top_counters`` the
    counters accumulated outside any span (a live tracer's
    ``counters``, or the meta header's ``counters`` when re-deriving
    from a file).  ``scripts/validate_trace.py`` recomputes the
    section through this same function and holds the manifest to it,
    so a ``serve.cluster_*`` / ``serve.scrub_*`` tally can never
    silently drift from the trace that produced it.
    """
    prefix = "serve."
    entries: Dict[str, Any] = {}
    sources = [top_counters or {}]
    sources.extend(rec.get("counters") or {} for rec in records)
    for counters in sources:
        for name, value in counters.items():
            if name.startswith(prefix):
                key = name[len(prefix):]
                entries[key] = entries.get(key, 0) + value
    for rec in records:
        attrs = rec.get("attrs") or {}
        if rec.get("name") == "serve.session":
            for key in ("p50_ms", "p99_ms", "ok", "rejected", "shed",
                        "deadline_misses"):
                if isinstance(attrs.get(key), (int, float)):
                    entries[key] = attrs[key]
        elif rec.get("name") == "serve.cluster":
            for key in ("ok", "rejected", "map_version",
                        "under_replicated"):
                if isinstance(attrs.get(key), (int, float)):
                    entries[f"cluster_{key}"] = attrs[key]
    return entries


def build_manifest(tracer: Tracer,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the manifest for one traced run.

    ``extra`` entries (e.g. the CLI argv) are merged in under ``run``.
    When the run used retries / timeouts / checkpoint-resume, their
    counts appear under ``resilience`` (absent otherwise); a run under
    the access sanitizer likewise stamps its ``sanitize`` tallies.
    """
    from .. import __version__

    manifest: Dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "trace_schema_version": TRACE_SCHEMA_VERSION,
        "created_unix": time.time(),
        "tool": {"name": "repro", "version": __version__},
        "git_sha": git_sha(),
        "host": {
            "python": sys.version.split()[0],
            "platform": _platform.platform(),
        },
        "run": dict(extra or {}),
        "cells": _cell_entries(tracer),
        "phases": tracer.summary(),
    }
    resilience = _resilience_entries(tracer)
    if resilience:
        manifest["resilience"] = resilience
    sanitize = _sanitize_entries(tracer)
    if sanitize:
        manifest["sanitize"] = sanitize
    serve = _serve_entries(tracer)
    if serve:
        manifest["serve"] = serve
    return manifest


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Write a (validated) manifest as indented JSON.

    Atomic, with a sidecar integrity record (see
    :mod:`repro.resilience.artifacts`) — a manifest is the document
    other artifacts are trusted *through*, so it is the last place a
    torn write or a bit flip may go unnoticed.
    """
    from ..resilience import artifacts as _artifacts

    validate_manifest(manifest)
    text = json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n"
    _artifacts.write_text_artifact(path, text, kind="manifest",
                                   schema_version=MANIFEST_SCHEMA_VERSION)


# -- validation -----------------------------------------------------------------


def _fail(problems: Iterable[str], what: str) -> None:
    problems = list(problems)
    if problems:
        raise ValueError(f"invalid {what}: " + "; ".join(problems))


def validate_manifest(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """Check the manifest against the schema; raises ValueError on drift."""
    problems = []
    if not isinstance(manifest, dict):
        raise ValueError(f"invalid manifest: not an object "
                         f"({type(manifest).__name__})")
    for key, kind in (("schema_version", int), ("created_unix", (int, float)),
                      ("tool", dict), ("host", dict), ("run", dict),
                      ("cells", list), ("phases", dict)):
        if key not in manifest:
            problems.append(f"missing key {key!r}")
        elif not isinstance(manifest[key], kind):
            problems.append(f"{key!r} is {type(manifest[key]).__name__}")
    if manifest.get("schema_version") not in (None, MANIFEST_SCHEMA_VERSION):
        problems.append(
            f"schema_version {manifest['schema_version']} != "
            f"{MANIFEST_SCHEMA_VERSION}")
    sha = manifest.get("git_sha")
    if sha is not None and (not isinstance(sha, str) or len(sha) != 40):
        problems.append(f"git_sha {sha!r} is not a 40-char hex string")
    for n, cell in enumerate(manifest.get("cells") or []):
        if not isinstance(cell, dict):
            problems.append(f"cells[{n}] is not an object")
            continue
        for key in ("index", "kind", "layout", "platform", "seed",
                    "config_sha256", "wall_seconds", "counters"):
            if key not in cell:
                problems.append(f"cells[{n}] missing {key!r}")
        counters = cell.get("counters")
        if isinstance(counters, dict):
            for cname, value in counters.items():
                if not isinstance(value, (int, float)):
                    problems.append(
                        f"cells[{n}] counter {cname!r} is not numeric")
    for name, entry in (manifest.get("phases") or {}).items():
        if not isinstance(entry, dict) or "count" not in entry \
                or "total_seconds" not in entry:
            problems.append(f"phase {name!r} missing count/total_seconds")
    for section in ("resilience", "sanitize", "serve"):
        entries = manifest.get(section)
        if entries is None:
            continue
        if not isinstance(entries, dict):
            problems.append(
                f"{section!r} is {type(entries).__name__}, not an object")
            continue
        for rname, value in entries.items():
            if not isinstance(value, (int, float)):
                problems.append(
                    f"{section} counter {rname!r} is not numeric")
    _fail(problems, "manifest")
    return manifest


def _validate_span(rec: Dict[str, Any], lineno: int, problems: list) -> None:
    for key, kind in (("name", str), ("id", int), ("depth", int),
                      ("t0", (int, float)), ("t1", (int, float)),
                      ("dur", (int, float)), ("attrs", dict),
                      ("counters", dict)):
        if key not in rec:
            problems.append(f"line {lineno}: missing {key!r}")
        elif not isinstance(rec[key], kind):
            problems.append(f"line {lineno}: {key!r} is "
                            f"{type(rec[key]).__name__}")
    if "parent" not in rec:
        problems.append(f"line {lineno}: missing 'parent'")
    elif rec["parent"] is not None and not isinstance(rec["parent"], int):
        problems.append(f"line {lineno}: 'parent' is neither null nor int")
    if isinstance(rec.get("dur"), (int, float)):
        if rec["dur"] < 0:
            problems.append(f"line {lineno}: negative duration")
        t0, t1 = rec.get("t0"), rec.get("t1")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)) \
                and abs((t1 - t0) - rec["dur"]) > 1e-9:
            problems.append(f"line {lineno}: dur != t1 - t0")
    for cname, value in (rec.get("counters") or {}).items():
        if not isinstance(value, (int, float)):
            problems.append(f"line {lineno}: counter {cname!r} not numeric")


def validate_trace_file(path: str) -> int:
    """Validate a JSON-lines trace file; returns the span-record count.

    Checks the meta header, per-record structure, id uniqueness and
    parent resolution.  Raises ValueError with every problem found.
    """
    problems: list = []
    ids = set()
    parents = []
    n_spans = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: not JSON ({exc})")
                continue
            if lineno == 1:
                if rec.get("type") != "meta":
                    problems.append("line 1: missing meta header")
                elif rec.get("schema_version") != TRACE_SCHEMA_VERSION:
                    problems.append(
                        f"line 1: schema_version {rec.get('schema_version')} "
                        f"!= {TRACE_SCHEMA_VERSION}")
                if rec.get("type") == "meta":
                    continue
            if rec.get("type") != "span":
                problems.append(f"line {lineno}: unknown type {rec.get('type')!r}")
                continue
            n_spans += 1
            _validate_span(rec, lineno, problems)
            if isinstance(rec.get("id"), int):
                if rec["id"] in ids:
                    problems.append(f"line {lineno}: duplicate id {rec['id']}")
                ids.add(rec["id"])
            if rec.get("parent") is not None:
                parents.append((lineno, rec["parent"]))
    for lineno, parent in parents:
        if parent not in ids:
            problems.append(f"line {lineno}: parent {parent} not in file")
    if n_spans == 0:
        problems.append("no span records")
    _fail(problems, f"trace file {path}")
    return n_spans
