"""Legacy setup shim: this environment has no `wheel` package, so PEP-660
editable installs (`pip install -e .`) cannot build an editable wheel.
`python setup.py develop` (or the .pth fallback) provides the same result.
All real metadata lives in pyproject.toml."""
from setuptools import setup

setup()
