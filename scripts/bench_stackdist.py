#!/usr/bin/env python3
"""Time the stack-distance backend against per-cell vectorized replay.

A capacity sweep over fully-associative LRU caches prices every point
from ONE reuse-distance pass: the stack backend computes the histogram
once and reads each capacity's miss count off the cumulative curve,
where the replay backends must push the whole stream through a separate
cache per capacity.  This benchmark replays a 64^3 bilateral-filter r3
pencil stream (the acceptance workload) across a >=8-point capacity
sweep both ways, checks the miss counts agree bit-for-bit, and gates on
the single-pass path being at least 10x faster than the summed
per-capacity vector replays.

Run:  python scripts/bench_stackdist.py [--shape 64] [--repeat 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.core.grid import Grid  # noqa: E402
from repro.core.registry import make_layout  # noqa: E402
from repro.data.synthetic import mri_phantom  # noqa: E402
from repro.kernels.bilateral import BilateralFilter3D, BilateralSpec  # noqa: E402
from repro.memsim.address import AddressSpace  # noqa: E402
from repro.memsim.cache import Cache, CacheConfig  # noqa: E402
from repro.memsim.stackdist import stack_distance_histogram  # noqa: E402
from repro.parallel.pencil import Pencil  # noqa: E402

CAPACITIES = [64, 128, 256, 512, 1024, 2048, 4096, 8192]  # lines
GATE = 10.0


def kernel_stream(shape: tuple) -> np.ndarray:
    """Line-address stream of r3 zyx pencils through a Morton grid."""
    dense = mri_phantom(shape, noise=0.05, seed=0)
    grid = Grid.from_dense(dense, make_layout("morton", shape))
    filt = BilateralFilter3D(BilateralSpec(radius=3, stencil_order="zyx"))
    space = AddressSpace(64)
    mid = (shape[0] // 2, shape[1] // 2)
    chunks = [filt.pencil_trace(grid, Pencil(axis=2, fixed=(mid[0] + d, mid[1])),
                                space)
              for d in range(4)]
    return np.concatenate([c.lines for c in chunks])


def replay_misses(lines: np.ndarray, capacity: int) -> int:
    """Miss count from one vector replay through a FA-LRU cache."""
    cfg = CacheConfig("FA", capacity * 64, ways=capacity)
    cache = Cache(cfg, seed=0, backend="vector")
    cache.access_lines(lines)
    return cache.stats.misses


def time_replay_sweep(lines: np.ndarray, repeat: int):
    """Best-of-`repeat` total time to replay every capacity separately."""
    best, misses = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        misses = [replay_misses(lines, c) for c in CAPACITIES]
        best = min(best, time.perf_counter() - t0)
    return best, np.array(misses, dtype=np.int64)


def time_stack_sweep(lines: np.ndarray, repeat: int):
    """Best-of-`repeat` time for one histogram pass pricing every point."""
    best, misses = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        hist = stack_distance_histogram(lines)
        misses = hist.miss_counts(CAPACITIES)
        best = min(best, time.perf_counter() - t0)
    return best, misses


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--shape", type=int, default=64)
    ap.add_argument("--repeat", type=int, default=3)
    args = ap.parse_args()
    shape = (args.shape,) * 3

    print(f"generating bilateral r3 stream at {shape} ...", file=sys.stderr)
    lines = kernel_stream(shape)
    print(f"{lines.size} line accesses, {len(CAPACITIES)}-point "
          f"capacity sweep {CAPACITIES[0]}..{CAPACITIES[-1]} lines\n")

    t_replay, m_replay = time_replay_sweep(lines, args.repeat)
    t_stack, m_stack = time_stack_sweep(lines, args.repeat)

    print(f"{'capacity':>9} {'replay misses':>14} {'stack misses':>13}")
    for c, mr, ms in zip(CAPACITIES, m_replay, m_stack):
        print(f"{c:>9} {mr:>14} {ms:>13}")
    if m_replay.tolist() != m_stack.tolist():
        print("\nFAIL: stack miss counts diverge from vector replay")
        return 1
    print("\nmiss counts agree bit-for-bit on every capacity")

    speedup = t_replay / t_stack
    print(f"per-capacity vector replay: {t_replay * 1e3:>8.1f}ms "
          f"({len(CAPACITIES)} replays)")
    print(f"single-pass stack backend:  {t_stack * 1e3:>8.1f}ms "
          f"(1 histogram + {len(CAPACITIES)} lookups)")
    print(f"sweep speedup {speedup:.1f}x "
          f"({'PASS' if speedup >= GATE else 'BELOW'} the {GATE:.0f}x "
          f"acceptance bar)")
    return 0 if speedup >= GATE else 1


if __name__ == "__main__":
    sys.exit(main())
