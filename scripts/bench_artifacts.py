#!/usr/bin/env python3
"""Guard: artifact integrity verification + preflight must cost < 5%.

The durability layer (docs/RESILIENCE.md) touches a sweep's hot path in
two places: every artifact read is verified against its sidecar
checksum, and every governed batch runs one preflight admission check.
This gate projects their cost against a cell run the way
bench_trace.py does for tracing:

1. per-read verify delta: verified ``read_artifact`` minus a bare
   ``open().read()`` of the same bytes (best-of-N each) — one verified
   input volume per cell, pessimistically;
2. per-batch preflight: one ``Governor.preflight`` over a six-cell
   batch, amortized per cell;
3. both compared against the untraced wall time of one cell run.

The *write* side (temp file + fsync + atomic replace + sidecar) is
reported for visibility but not gated: that cost *is* the durability
guarantee — an equally-durable bare write needs the same fsync — and
artifacts are written once per run, not per cell.

Exits non-zero when the projected per-cell overhead exceeds the budget,
so CI can hold the line.

Run:  python scripts/bench_artifacts.py [--shape 24] [--repeat 5]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.experiments import (  # noqa: E402
    BilateralCell,
    clear_caches,
    default_ivybridge,
    run_bilateral_cell,
)
from repro.resilience.artifacts import (  # noqa: E402
    read_artifact,
    write_artifact,
)
from repro.resilience.governor import Governor  # noqa: E402

BUDGET = 0.05  # fraction of cell wall time


def best_of(fn, repeat: int) -> float:
    """Best-of-N wall seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_io(payload: bytes, repeat: int) -> dict:
    """Best-of-N seconds for bare vs integrity-checked I/O."""
    with tempfile.TemporaryDirectory() as tmp:
        bare = os.path.join(tmp, "bare.raw")
        checked = os.path.join(tmp, "checked.raw")

        def bare_write_durable():
            # the fair write baseline: equally durable, no integrity
            with open(bare, "wb") as fh:  # repro: noqa[RPC401]
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())

        def bare_read():
            with open(bare, "rb") as fh:
                fh.read()

        bare_write_durable()
        write_artifact(checked, payload, kind="bench-volume")
        return {
            "bare_write": best_of(bare_write_durable, repeat),
            "bare_read": best_of(bare_read, repeat),
            "checked_write": best_of(
                lambda: write_artifact(checked, payload,
                                       kind="bench-volume"), repeat),
            "checked_read": best_of(lambda: read_artifact(checked), repeat),
        }


def preflight_cost(cells, repeat: int) -> float:
    """Seconds one preflight admission decision takes for the batch."""
    governor = Governor()
    return best_of(lambda: governor.preflight(cells, 4, artifact_dir="."),
                   repeat)


def cell_wall_time(cell, repeat: int) -> float:
    """Best-of-N untraced wall seconds for one cell run (caches warm)."""
    run_bilateral_cell(cell)  # warm dataset/grid caches
    return best_of(lambda: run_bilateral_cell(cell), repeat)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shape", type=int, default=24)
    parser.add_argument("--repeat", type=int, default=5)
    args = parser.parse_args()

    cell = BilateralCell(
        platform=default_ivybridge(64), layout="morton",
        shape=(args.shape,) * 3, stencil="r1", n_threads=2,
    )
    cells = [cell] * 6
    payload = np.zeros((args.shape,) * 3, dtype=np.float32).tobytes()

    io_times = measure_io(payload, args.repeat)
    verify_delta = max(0.0, io_times["checked_read"] - io_times["bare_read"])
    write_delta = max(0.0,
                      io_times["checked_write"] - io_times["bare_write"])
    preflight = preflight_cost(cells, args.repeat)
    clear_caches()
    wall = cell_wall_time(cell, args.repeat)
    projected = verify_delta + preflight / len(cells)
    frac = projected / wall

    print(f"artifact payload    : {len(payload) // 1024:8d} KiB")
    print(f"verify-on-read delta: {verify_delta * 1e6:8.2f} us/read")
    print(f"write delta (info)  : {write_delta * 1e6:8.2f} us/artifact "
          f"vs fsync'd bare write, once per run")
    print(f"preflight cost      : {preflight * 1e6:8.2f} us/batch "
          f"({len(cells)} cells)")
    print(f"untraced cell time  : {wall * 1e3:8.2f} ms")
    print(f"projected overhead  : {projected * 1e6:8.2f} us/cell "
          f"({frac * 100:.3f}% of cell)")
    if frac >= BUDGET:
        print(f"FAIL: verification + preflight overhead {frac * 100:.2f}% "
              f">= {BUDGET * 100:.0f}% budget")
        return 1
    print(f"OK: under the {BUDGET * 100:.0f}% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
