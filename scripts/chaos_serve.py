#!/usr/bin/env python3
"""Chaos serve: a replicated store serves bit-identical bytes under fire.

The CI gate for the serving reliability layer (docs/SERVING.md
§ Serving reliability).  One volume is bricked into a 2-way replicated
store across 4 simulated shards, a seeded workload is served once
undisturbed, and then served again while a deterministic fault plan

* takes a whole shard down for the entire run (``shard-down``),
* rots one replica of a segment whose only other copy lives on the
  dead shard — forcing an origin **rebuild** (``segread-corrupt``),
* rots one replica whose sibling is healthy — forcing failover plus
  **read-repair** (``segread-corrupt``),
* and wedges one read past the hedge threshold (``segread-slow``).

The faulted run must return payloads **bit-identical** to the
undisturbed run (a wrong byte is never served), answer every query
(zero unaccounted failures: nothing shed, nothing rejected), keep the
cache's memsim cross-check exact through all the rollbacks, trip the
dead shard's circuit breaker, and leave every replica on disk
verifying against its sidecar afterwards.  The traced run's manifest
must record all of it, and the trace + manifest pair must pass
``scripts/validate_trace.py``::

    python scripts/chaos_serve.py chaos_serve.jsonl
    python scripts/validate_trace.py chaos_serve.jsonl

Exits nonzero on any divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.data.synthetic import combustion_field  # noqa: E402
from repro.instrument import trace  # noqa: E402
from repro.instrument.manifest import build_manifest, write_manifest  # noqa: E402
from repro.resilience.artifacts import verify_artifact  # noqa: E402
from repro.resilience.faults import clear_faults, install_faults  # noqa: E402
from repro.resilience.policy import RetryPolicy  # noqa: E402
from repro.serve import (  # noqa: E402
    ChunkStore,
    ReliabilityConfig,
    VolumeServer,
    arrival_times,
    cache_crosscheck,
    generate_queries,
)

#: store geometry: 48^3 / 8^3 chunks / 4 per segment = 54 segments,
#: 2 replicas ringed over 4 shards (primaries = contiguous curve ranges)
SHAPE = (48, 48, 48)
CHUNK = 8
CHUNKS_PER_SEGMENT = 4
ORDER = "hilbert"
REPLICAS = 2
SHARDS = 4

N_QUERIES = 24
SEED = 7
CACHE = "lru:capacity=8"
CONCURRENCY = 4

#: shard 1 is dead for the whole run; read indexes count live replica
#: reads in the deterministic serve order (time_scale=0), so: read 0 is
#: seg 1's primary on shard 0 — its only sibling lives on the dead
#: shard, so corruption forces an origin rebuild; read 24 is seg 43's
#: primary on shard 3 — its sibling on shard 0 is healthy, so
#: corruption forces failover + read-repair; read 10 (a failover read
#: already) is additionally wedged past the hedge threshold
FAULT_PLAN = ("shard-down@1,segread-corrupt@0,"
              "segread-slow@10:seconds=0.06,segread-corrupt@24")

#: generous per-query budget: the injected slowness must fail over,
#: not blow the deadline
RELIABILITY = ReliabilityConfig(
    deadline_s=10.0,
    retry=RetryPolicy(max_retries=3, backoff_base=0.01))


def _payload_hashes(results):
    return [hashlib.sha256(np.ascontiguousarray(r.data).tobytes())
            .hexdigest() for r in results]


def _finish(problems, n_queries: int, trace_path: str) -> int:
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: {n_queries} queries bit-identical to reference under "
          f"shard-down+corrupt+slow; trace: {trace_path}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", default="chaos_serve.jsonl",
                        help="trace output path (manifest lands beside it)")
    args = parser.parse_args()

    dense = combustion_field(SHAPE, seed=SEED)
    queries = generate_queries(SHAPE, N_QUERIES, seed=SEED)
    arrivals = arrival_times(N_QUERIES, profile="burst", seed=SEED)

    problems = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-serve-") as tmp:
        store = ChunkStore.create(
            os.path.join(tmp, "store"), dense, order=ORDER, chunk=CHUNK,
            chunks_per_segment=CHUNKS_PER_SEGMENT,
            replicas=REPLICAS, shards=SHARDS)
        print(f"store: {SHAPE} / chunk {CHUNK} / {store.n_segments} "
              f"segments, {REPLICAS} replicas on {SHARDS} shards, "
              f"order {ORDER}")

        print(f"reference run: {N_QUERIES} queries, no faults")
        clear_faults()
        reference = VolumeServer(store, cache=CACHE).serve_session(
            queries, concurrency=CONCURRENCY, arrivals=arrivals,
            time_scale=0.0)
        want = _payload_hashes(reference)

        print(f"chaos run: faults [{FAULT_PLAN}], deadline "
              f"{RELIABILITY.deadline_s:g}s, "
              f"{RELIABILITY.retry.max_retries} retries")
        install_faults(FAULT_PLAN)
        server = VolumeServer(store, cache=CACHE, reliability=RELIABILITY)
        tracer = trace.enable()
        start = time.monotonic()
        try:
            chaotic = server.serve_session(
                queries, concurrency=CONCURRENCY, arrivals=arrivals,
                time_scale=0.0)
        finally:
            trace.disable()
            clear_faults()
        elapsed = time.monotonic() - start

        check = cache_crosscheck(server.cache)
        tracer.write_jsonl(args.trace)
        manifest = build_manifest(tracer, extra={"argv": sys.argv,
                                                 "faults": FAULT_PLAN})
        write_manifest(args.trace + ".manifest.json", manifest)

        stats = manifest.get("serve", {})
        print(f"survived in {elapsed:.1f}s; serve stats: "
              + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))

        got = _payload_hashes([r for r in chaotic if r.ok])
        if len(got) != N_QUERIES:
            rejected = [r for r in chaotic if not r.ok]
            problems.append(
                f"{len(rejected)} queries went unanswered: "
                + "; ".join(f"{r.reason}: {r.error}" for r in rejected[:3]))
        elif got != want:
            bad = [i for i, (a, b) in enumerate(zip(got, want)) if a != b]
            problems.append(f"served bytes differ from the undisturbed "
                            f"run at queries {bad}")
        if stats.get("shed", 0) != 0:
            problems.append(f"{stats['shed']} queries shed with no "
                            f"admission bound configured")
        if stats.get("reliability_failovers", 0) < 3:
            problems.append("dead shard produced fewer than 3 replica "
                            "failovers")
        if stats.get("reliability_read_repairs", 0) < 1:
            problems.append("corrupt replica with a healthy sibling was "
                            "not read-repaired")
        if stats.get("segments_rebuilt", 0) < 1:
            problems.append("segment with no healthy replica was not "
                            "rebuilt from the origin")
        if stats.get("reliability_breaker_open", 0) < 1:
            problems.append("dead shard never tripped its circuit breaker")
        if stats.get("reliability_breaker_denied", 0) < 1:
            problems.append("open breaker never short-circuited a read")
        if not check.consistent:
            problems.append("cache counters diverged from memsim under "
                            "faults: " + "; ".join(check.mismatches()))

        # the wake of the chaos must be clean: every replica of every
        # segment back on disk and verifying against its sidecar
        unverified = 0
        for seg in range(store.n_segments):
            for r in range(REPLICAS):
                try:
                    verify_artifact(store._replica_path(seg, r),
                                    quarantine=False)
                except Exception:
                    unverified += 1
        if unverified:
            problems.append(f"{unverified} replica files fail sidecar "
                            f"verification after repair/rebuild")
    return _finish(problems, N_QUERIES, args.trace)


if __name__ == "__main__":
    raise SystemExit(main())
