#!/usr/bin/env python3
"""Gate: curve-ordered chunk placement must beat row-major for serving.

Replays the identical seeded query workload (Zipf viewports, orbit
sweeps, boxes, slabs, rays — :mod:`repro.serve.traffic`) against one
store per chunk order and reports p50/p99 latency, QPS, segments
touched per bbox-family query, chunk utilization, and cache hit rate.
Every cache's counters are cross-checked bit-for-bit against the
memsim stack-distance model before anything is reported.

Exits non-zero when any curve order touches *more* segments per
bbox-family query than the row-major baseline — the storage transplant
of the paper's core claim, held as a regression gate.

Run:  python scripts/bench_serve.py [--shape 64] [--queries 120]
      python scripts/bench_serve.py --shape 128 --chunk 16   # paper scale
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.serve import render, run_serve_bench  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", type=int, default=64,
                    help="volume edge length (default 64; 128 = the "
                         "acceptance configuration)")
    ap.add_argument("--chunk", type=int, default=8,
                    help="brick edge length (default 8; use 16 at 128)")
    ap.add_argument("--chunks-per-segment", type=int, default=4)
    ap.add_argument("--orders", nargs="+",
                    default=["array", "morton", "hilbert"])
    ap.add_argument("--baseline", default="array")
    ap.add_argument("--queries", type=int, default=120)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--cache", default="lru:capacity=32")
    ap.add_argument("--on-degenerate", choices=["error", "adjust"],
                    default="adjust",
                    help="reject or auto-adjust (with a warning) configs "
                         "where the chunk grid's x-extent equals "
                         "--chunks-per-segment and the gate would "
                         "silently favor row-major")
    args = ap.parse_args(argv)

    bench = run_serve_bench(
        shape=args.shape, chunk=args.chunk,
        chunks_per_segment=args.chunks_per_segment,
        orders=tuple(args.orders), baseline=args.baseline,
        n_queries=args.queries, seed=args.seed, cache=args.cache,
        on_degenerate=args.on_degenerate)
    print(render(bench))
    return 0 if bench.ok else 1


if __name__ == "__main__":
    sys.exit(main())
