#!/usr/bin/env python3
"""Guard: tracing must cost < 5% of a cell run while disabled.

Two measurements back the claim in docs/SIMULATOR.md:

1. the per-call cost of a *disabled* ``trace.span()`` (a global load,
   a compare, and a shared no-op context manager), multiplied by the
   span count an instrumented cell actually emits, compared against the
   cell's untraced wall time;
2. the direct comparison: the same cell run back-to-back with tracing
   off, reported as a ratio against the baseline.

Exits non-zero when the projected overhead exceeds the budget, so CI
can hold the line.

Run:  python scripts/bench_trace.py [--shape 24] [--repeat 5]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.experiments import (  # noqa: E402
    BilateralCell,
    clear_caches,
    default_ivybridge,
    run_bilateral_cell,
)
from repro.instrument import trace  # noqa: E402

BUDGET = 0.05  # fraction of cell wall time


def disabled_span_cost(calls: int = 200_000) -> float:
    """Per-call seconds of a span() open/close while tracing is off."""
    assert trace.current() is None
    t0 = time.perf_counter()
    for _ in range(calls):
        with trace.span("bench"):
            pass
    return (time.perf_counter() - t0) / calls


def traced_span_count(cell) -> int:
    """How many spans one run of ``cell`` actually emits."""
    tracer = trace.enable()
    run_bilateral_cell(cell)
    trace.disable()
    return len(tracer.records)


def cell_wall_time(cell, repeat: int) -> float:
    """Best-of-N untraced wall seconds for one cell run (caches warm)."""
    run_bilateral_cell(cell)  # warm dataset/grid caches
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        run_bilateral_cell(cell)
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shape", type=int, default=24)
    parser.add_argument("--repeat", type=int, default=5)
    args = parser.parse_args()

    cell = BilateralCell(
        platform=default_ivybridge(64), layout="morton",
        shape=(args.shape,) * 3, stencil="r1", n_threads=2,
    )

    per_call = disabled_span_cost()
    n_spans = traced_span_count(cell)
    clear_caches()
    wall = cell_wall_time(cell, args.repeat)
    projected = per_call * n_spans
    frac = projected / wall

    print(f"disabled span cost : {per_call * 1e9:8.1f} ns/call")
    print(f"spans per cell run : {n_spans:8d}")
    print(f"untraced cell time : {wall * 1e3:8.2f} ms")
    print(f"projected overhead : {projected * 1e6:8.2f} us "
          f"({frac * 100:.3f}% of cell)")
    if frac >= BUDGET:
        print(f"FAIL: disabled-tracing overhead {frac * 100:.2f}% "
              f">= {BUDGET * 100:.0f}% budget")
        return 1
    print(f"OK: under the {BUDGET * 100:.0f}% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
