#!/usr/bin/env python3
"""Chaos cluster: elastic sharding serves bit-identical bytes through
rolling shard failures and a rejoin.

The CI gate for the elastic serving tier (docs/SERVING.md § Elastic
sharding).  One volume is bricked into a 2-way replicated store over 6
simulated shards, a seeded workload is served once undisturbed, and
then served again by a :class:`~repro.serve.cluster.ShardCluster`
while a deterministic membership fault plan

* kills shard 2 at cluster event 8 (``shard-kill``),
* kills shard 4 at event 20 — a *rolling* second failure that lands
  while the first rebalance's map is already live,
* and rejoins shard 2 at event 32 (``shard-join``), mid-session.

The cluster must detect each change with its clock-free event-count
detector, re-replicate the dead shards' contiguous curve-segment
ranges from healthy siblings while the old map keeps serving, and cut
over — all without a single wrong byte: every query answered,
payloads **bit-identical** to the undisturbed run, the cache's memsim
cross-check exact, the under-replicated-segment count monotone back
to zero, zero origin rebuilds (rolling failures always leave a
healthy sibling), and the SFC map moving no more segment copies than
the block-Cartesian strawman for every membership change.  A scrub
pass afterwards must catch and repair an injected at-rest corruption
and a silently divergent replica.  The trace + manifest pair must
pass ``scripts/validate_trace.py``::

    python scripts/chaos_cluster.py chaos_cluster.jsonl
    python scripts/validate_trace.py chaos_cluster.jsonl

Exits nonzero on any divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.data.synthetic import combustion_field  # noqa: E402
from repro.instrument import trace  # noqa: E402
from repro.instrument.manifest import build_manifest, write_manifest  # noqa: E402
from repro.resilience.artifacts import verify_artifact  # noqa: E402
from repro.resilience.faults import clear_faults, install_faults  # noqa: E402
from repro.resilience.policy import RetryPolicy  # noqa: E402
from repro.serve import (  # noqa: E402
    ChunkStore,
    ReliabilityConfig,
    ShardCluster,
    VolumeServer,
    cache_crosscheck,
    generate_queries,
)

#: store geometry: 48^3 / 8^3 chunks / 4 per segment = 54 segments,
#: 2 replicas ringed over 6 shards (primaries = contiguous curve ranges)
SHAPE = (48, 48, 48)
CHUNK = 8
CHUNKS_PER_SEGMENT = 4
ORDER = "hilbert"
REPLICAS = 2
SHARDS = 6

N_QUERIES = 36
SEED = 7
CACHE = "lru:capacity=8"

#: the membership storyline, keyed on the cluster event counter (one
#: event per query): rolling kills of 2 of the 6 shards, then shard 2
#: rejoins mid-session — all through REPRO_FAULTS, so the same spec
#: grammar that drives cell/disk/serve chaos drives membership chaos
FAULT_PLAN = "shard-kill@2:at=8,shard-kill@4:at=20,shard-join@2:at=32"

#: detector pacing: suspect after 3 missed events, dead after 6,
#: 2 clean heartbeats to complete a join; 4 copy moves per tick
SUSPECT_AFTER = 3
DEAD_AFTER = 6
JOIN_AFTER = 2
REBALANCE_BUDGET = 4
SCRUB_BUDGET = 2

RELIABILITY = ReliabilityConfig(
    retry=RetryPolicy(max_retries=3, backoff_base=0.01))


def _payload_hashes(results):
    return [hashlib.sha256(np.ascontiguousarray(r.data).tobytes())
            .hexdigest() for r in results]


def _finish(problems, n_queries: int, trace_path: str) -> int:
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: {n_queries} queries bit-identical through 2 rolling "
          f"shard kills + 1 rejoin; trace: {trace_path}")
    return 0


def _check_session(problems, cluster, chaotic, want, stats):
    got = _payload_hashes([r for r in chaotic if r.ok])
    if len(got) != N_QUERIES:
        rejected = [r for r in chaotic if not r.ok]
        problems.append(
            f"{len(rejected)} queries went unanswered: "
            + "; ".join(f"{r.reason}: {r.error}" for r in rejected[:3]))
    elif got != want:
        bad = [i for i, (a, b) in enumerate(zip(got, want)) if a != b]
        problems.append(f"served bytes differ from the undisturbed "
                        f"run at queries {bad}")
    if cluster.deaths != 2:
        problems.append(f"expected 2 shard deaths, saw {cluster.deaths}")
    if cluster.joins != 1:
        problems.append(f"expected 1 shard join, saw {cluster.joins}")
    if cluster.cutovers < 3:
        problems.append(f"expected >= 3 map cutovers, "
                        f"saw {cluster.cutovers}")
    if cluster.target is not None:
        problems.append("cluster never finished its last migration")
    if stats.get("segments_rebuilt", 0) != 0:
        problems.append(
            f"{stats['segments_rebuilt']} origin rebuilds: rolling "
            f"failures must always leave a healthy sibling")
    # under-replication must rise on each detected death and come
    # monotonically back to zero — the re-replication promise
    hist = cluster.under_replicated_history
    peak = max(c for _, c in hist)
    if peak < 1:
        problems.append("shard deaths never produced under-replication "
                        "(detector asleep?)")
    last_rise = max((i for i in range(1, len(hist))
                     if hist[i][1] > hist[i - 1][1]), default=0)
    tail = [c for _, c in hist[last_rise:]]
    if any(a < b for a, b in zip(tail, tail[1:])):
        problems.append("under-replicated count not monotone after its "
                        f"last rise: {tail}")
    if hist[-1][1] != 0 or cluster.under_replicated() != 0:
        problems.append(f"under-replicated count ended at "
                        f"{hist[-1][1]}, not 0")
    # the SFC claim, per membership change: contiguous curve ranges
    # move no more copies than recutting a Cartesian box grid
    for c in cluster.comparisons:
        if c.sfc_moved > c.cartesian_moved:
            problems.append(
                f"SFC map moved {c.sfc_moved} segment copies for "
                f"{c.old_live} -> {c.new_live}, more than the "
                f"block-Cartesian strawman's {c.cartesian_moved:.1f}")


def _exercise_scrubber(problems, cluster):
    """Inject at-rest rot + a silently divergent replica; scrub must
    catch and repair both (the read path would never see the second
    one until routed there — that is the scrubber's whole job)."""
    store = cluster.store
    alive = {s for s, st in cluster.detector.state.items()
             if st == "alive"}
    victims = []
    for seg in range(store.n_segments):
        placed = cluster.map.replicas_of(seg)
        if len(placed) >= 2 and set(placed) <= alive:
            victims.append((seg, placed))
            if len(victims) == 2:
                break
    if len(victims) < 2:
        problems.append("no fully-alive replicated segments to scrub")
        return
    (seg_rot, placed_rot), (seg_div, placed_div) = victims
    # 1: flip one byte at rest (sidecar mismatch — verification catches)
    rot_path = store.path_on_shard(seg_rot, placed_rot[1])
    with open(rot_path, "r+b") as fh:  # repro: noqa[RPC401] (injecting rot)
        byte = fh.read(1)
        fh.seek(0)
        fh.write(bytes([byte[0] ^ 0xFF]))
    # 2: a self-consistent but divergent non-primary copy (valid
    # sidecar over the wrong bytes — only digest comparison catches)
    good = store.read_replica_bytes(seg_div, [placed_div[0]])
    store.write_replica_on(seg_div, placed_div[1], good[::-1])

    before_rep = cluster.scrubber.repaired
    before_div = cluster.scrubber.divergent
    work = 2 * len([p for p in cluster.map.placements() if p[1] in alive])
    cluster.scrubber.run(work)  # two full laps
    if cluster.scrubber.repaired - before_rep < 2:
        problems.append(
            f"scrubber repaired "
            f"{cluster.scrubber.repaired - before_rep} of 2 injected "
            f"bad replicas")
    if cluster.scrubber.divergent - before_div < 1:
        problems.append("scrubber missed the silently divergent replica")
    for seg, placed in victims:
        ref = store.read_replica_bytes(seg, [placed[0]])
        for shard in placed[1:]:
            if store.read_replica_bytes(seg, [shard]) != ref:
                problems.append(f"segment {seg} replicas still diverge "
                                f"after scrubbing")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", default="chaos_cluster.jsonl",
                        help="trace output path (manifest lands beside it)")
    args = parser.parse_args()

    dense = combustion_field(SHAPE, seed=SEED)
    queries = generate_queries(SHAPE, N_QUERIES, seed=SEED)

    problems = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-cluster-") as tmp:
        kwargs = dict(order=ORDER, chunk=CHUNK,
                      chunks_per_segment=CHUNKS_PER_SEGMENT,
                      replicas=REPLICAS, shards=SHARDS)
        store = ChunkStore.create(os.path.join(tmp, "store"), dense,
                                  **kwargs)
        ref_store = ChunkStore.create(os.path.join(tmp, "ref"), dense,
                                      **kwargs)
        print(f"store: {SHAPE} / chunk {CHUNK} / {store.n_segments} "
              f"segments, {REPLICAS} replicas on {SHARDS} shards, "
              f"order {ORDER}")

        print(f"reference run: {N_QUERIES} queries, stable membership")
        clear_faults()
        reference = VolumeServer(ref_store, cache=CACHE)
        want = _payload_hashes([reference.serve(q) for q in queries])

        print(f"chaos run: membership faults [{FAULT_PLAN}]")
        install_faults(FAULT_PLAN)
        cluster = ShardCluster(
            store, cache=CACHE, reliability=RELIABILITY,
            suspect_after=SUSPECT_AFTER, dead_after=DEAD_AFTER,
            join_after=JOIN_AFTER, rebalance_budget=REBALANCE_BUDGET,
            scrub_budget=SCRUB_BUDGET)
        tracer = trace.enable()
        start = time.monotonic()
        try:
            chaotic = cluster.serve_session(queries)
            # anti-entropy, inside the trace so scrub_* reach the manifest
            _exercise_scrubber(problems, cluster)
        finally:
            trace.disable()
            clear_faults()
        elapsed = time.monotonic() - start

        check = cache_crosscheck(cluster.server.cache)
        tracer.write_jsonl(args.trace)
        manifest = build_manifest(tracer, extra={"argv": sys.argv,
                                                 "faults": FAULT_PLAN})
        write_manifest(args.trace + ".manifest.json", manifest)

        stats = manifest.get("serve", {})
        print(f"survived in {elapsed:.1f}s; map v{cluster.map.version}, "
              f"{cluster.segments_moved} copies moved; serve stats: "
              + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))

        _check_session(problems, cluster, chaotic, want, stats)
        if stats.get("scrub_checked", 0) < 1:
            problems.append("scrub counters never reached the manifest")
        if not check.consistent:
            problems.append("cache counters diverged from memsim under "
                            "membership chaos: "
                            + "; ".join(check.mismatches()))

        # the wake of the chaos must be clean: every copy the final map
        # calls for on disk and verifying against its sidecar
        unverified = 0
        for seg, shard in sorted(cluster.map.placements()):
            try:
                verify_artifact(store.path_on_shard(seg, shard),
                                quarantine=False)
            except Exception:
                unverified += 1
        if unverified:
            problems.append(f"{unverified} mapped copies fail sidecar "
                            f"verification after the rebalances")
    return _finish(problems, N_QUERIES, args.trace)


if __name__ == "__main__":
    raise SystemExit(main())
