#!/usr/bin/env python3
"""Chaos smoke: a sweep survives injected process *and* disk faults.

The CI resilience check, in two modes.

**Default mode** — process chaos: a small bilateral batch runs under a
fault plan that kills one worker mid-cell (``crash``), wedges another
past the per-cell timeout (``hang``), and ships one schema-invalid
payload (``corrupt``) — all deterministic, all transient (``once``), so
with retries enabled the batch must still complete and its results must
be *identical* to an undisturbed serial run.

**``--disk-faults`` mode** — disk/memory chaos against the durability
layer: the batch journals to a checkpoint while the fault plan starves
one journal append of disk (``enospc``), tears another mid-line
(``torn``), flips a bit in a third at rest (``bitflip``), and OOMs one
cell (``oom``).  The run must degrade gracefully (results intact, write
error counted), and a resumed run over the damaged journal must restore
exactly the intact records — quarantining the corrupt one, never
decoding it — and converge to rows bit-for-bit identical to the
undisturbed run.  A corrupted raw volume artifact must likewise be
quarantined on read, not silently decoded.

Either way the traced run's manifest must record what the machinery did,
and the emitted trace + manifest pair must pass
``scripts/validate_trace.py`` afterwards::

    python scripts/chaos_smoke.py chaos.jsonl
    python scripts/chaos_smoke.py --disk-faults disk_chaos.jsonl
    python scripts/validate_trace.py chaos.jsonl

Exits nonzero on any divergence.  See docs/RESILIENCE.md.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from dataclasses import replace

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.data.io import read_raw, write_raw  # noqa: E402
from repro.experiments import (  # noqa: E402
    BilateralCell,
    RetryPolicy,
    default_ivybridge,
    run_cells_parallel,
)
from repro.instrument import trace  # noqa: E402
from repro.instrument.manifest import build_manifest, write_manifest  # noqa: E402
from repro.resilience.artifacts import ArtifactIntegrityError  # noqa: E402
from repro.resilience.faults import clear_faults, install_faults  # noqa: E402

#: one worker crash, one hang (reaped by the timeout), one corrupt payload
FAULT_PLAN = "crash@1,hang@3:seconds=600,corrupt@4"

#: disk/memory chaos: cell 2 OOMs once; journal appends 1 / 3 / 5 hit
#: ENOSPC, a torn write, and at-rest bit rot (write indexes count the
#: serial run's six journal records 0..5)
DISK_FAULT_PLAN = "oom@2,enospc@1,torn@3,bitflip@5"

#: per-cell deadline: generous for a 48^3 cell, tiny next to the hang
CELL_TIMEOUT = 15.0


def make_cells():
    # 48^3 keeps each cell fast but long enough that per-phase durations
    # dwarf scheduler noise — the validate_trace.py cross-check compares
    # phase sums to wall clock within 10%
    base = BilateralCell(platform=default_ivybridge(64), shape=(48, 48, 48),
                         n_threads=2, stencil="r1", pencils_per_thread=1)
    return [replace(base, layout=layout, n_threads=n)
            for n in (2, 4, 8) for layout in ("array", "morton")]


def _finish(problems, n_cells: int, what: str, trace_path: str) -> int:
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: {n_cells} cells identical to reference after {what}; "
          f"trace: {trace_path}")
    return 0


def run_process_chaos(args) -> int:
    """Default mode: crash + hang + corrupt, multi-worker, retried."""
    cells = make_cells()
    print(f"reference run: {len(cells)} cells, serial, no faults")
    clear_faults()
    reference = run_cells_parallel(cells, workers=1)

    print(f"chaos run: faults [{FAULT_PLAN}], workers=2, "
          f"timeout={CELL_TIMEOUT:g}s, 2 retries")
    install_faults(FAULT_PLAN)
    tracer = trace.enable()
    start = time.monotonic()
    try:
        chaotic = run_cells_parallel(
            cells, workers=2, timeout=CELL_TIMEOUT,
            retry=RetryPolicy(max_retries=2, backoff_base=0.05))
    finally:
        trace.disable()
        clear_faults()
    elapsed = time.monotonic() - start

    tracer.write_jsonl(args.trace)
    manifest = build_manifest(tracer, extra={"argv": sys.argv,
                                             "faults": FAULT_PLAN})
    write_manifest(args.trace + ".manifest.json", manifest)

    stats = manifest.get("resilience", {})
    print(f"survived in {elapsed:.1f}s; resilience stats: "
          + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))

    problems = []
    if chaotic != reference:
        problems.append("chaos results differ from the undisturbed run")
    if stats.get("worker_deaths", 0) < 1:
        problems.append("crash fault produced no worker death")
    if stats.get("timeouts", 0) < 1:
        problems.append("hang fault was not reaped by the timeout")
    if stats.get("corrupt", 0) < 1:
        problems.append("corrupt fault was not quarantined")
    if stats.get("retries", 0) < 3:
        problems.append(f"expected >= 3 retries, saw {stats.get('retries')}")
    if stats.get("failures", 0) != 0:
        problems.append(f"{stats['failures']} cells failed outright")
    return _finish(problems, len(cells), "crash+hang+corrupt", args.trace)


def run_disk_chaos(args) -> int:
    """--disk-faults mode: enospc + torn + bitflip + oom, then resume."""
    cells = make_cells()
    print(f"reference run: {len(cells)} cells, serial, no faults")
    clear_faults()
    reference = run_cells_parallel(cells, workers=1)

    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "chaos.journal.jsonl")
        print(f"disk-chaos run: faults [{DISK_FAULT_PLAN}], serial, "
              f"journaled, governed")
        install_faults(DISK_FAULT_PLAN)
        tracer = trace.enable()
        start = time.monotonic()
        try:
            # phase A: the disk goes bad *under* the journal.  The batch
            # must keep its in-memory results (ENOSPC degrades, never
            # aborts) while the journal accumulates one missing, one
            # torn and one bit-rotted record.
            damaged = run_cells_parallel(
                cells, workers=1, checkpoint=journal, govern=True,
                retry=RetryPolicy(max_retries=2, backoff_base=0.05))

            # a raw volume hit by the same bit rot must quarantine on
            # read — never silently decode wrong voxels
            volume_path = os.path.join(tmp, "volume.raw")
            volume = np.arange(4 * 3 * 2, dtype=np.float32).reshape(4, 3, 2)
            install_faults("bitflip@0")
            write_raw(volume_path, volume)
            clear_faults()
            try:
                read_raw(volume_path, volume.shape)
                problems.append("bit-rotted volume was read back without "
                                "an integrity error")
            except ArtifactIntegrityError as exc:
                print(f"volume quarantined as designed: {exc}")
            if not os.path.exists(volume_path + ".corrupt"):
                problems.append("corrupt volume was not quarantined aside")

            # phase B: resume over the damaged journal, multi-worker.
            # Only the intact records restore; the corrupt one is
            # quarantined (never decoded) and its cell re-runs.
            print("resume over the damaged journal: workers=2")
            resumed = run_cells_parallel(
                cells, workers=2, checkpoint=journal, resume=True,
                timeout=CELL_TIMEOUT,
                retry=RetryPolicy(max_retries=2, backoff_base=0.05))
        finally:
            trace.disable()
            clear_faults()
        elapsed = time.monotonic() - start

        quarantine = journal + ".quarantine.jsonl"
        quarantined_records = 0
        if os.path.exists(quarantine):
            with open(quarantine) as fh:
                quarantined_records = sum(1 for line in fh if line.strip())

        tracer.write_jsonl(args.trace)
        manifest = build_manifest(tracer, extra={"argv": sys.argv,
                                                 "faults": DISK_FAULT_PLAN})
        write_manifest(args.trace + ".manifest.json", manifest)

        stats = manifest.get("resilience", {})
        print(f"survived in {elapsed:.1f}s; resilience stats: "
              + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))

        if damaged != reference:
            problems.append("results under disk faults differ from the "
                            "undisturbed run")
        if resumed != reference:
            problems.append("resumed results differ from the undisturbed run")
        # journal writes 0..5 in serial order: 1 starved (ENOSPC),
        # 3 torn (merging with 4's line), 5 bit-rotted — leaving
        # exactly records 0 and 2 restorable
        if stats.get("restored") != 2:
            problems.append(f"expected exactly 2 restored cells, "
                            f"saw {stats.get('restored')}")
        if stats.get("journal_write_errors", 0) < 1:
            problems.append("ENOSPC fault did not surface as a journal "
                            "write error")
        if stats.get("journal_corrupt", 0) < 1:
            problems.append("bit-rotted journal record was not detected "
                            "on load")
        if quarantined_records < 1:
            problems.append("no quarantine entry was written for the "
                            "corrupt journal record")
        if stats.get("retries", 0) < 1:
            problems.append("injected OOM was not retried")
        if stats.get("artifacts_quarantined", 0) < 1:
            problems.append("artifact quarantine did not reach the trace "
                            "counters")
        if stats.get("failures", 0) != 0:
            problems.append(f"{stats['failures']} cells failed outright")
        if "gov_admitted_workers" not in stats:
            problems.append("governed run recorded no admission decision")
    return _finish(problems, len(cells), "enospc+torn+bitflip+oom",
                   args.trace)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", default="chaos.jsonl",
                        help="trace output path (manifest lands beside it)")
    parser.add_argument("--disk-faults", action="store_true",
                        help="run the disk/memory chaos gate (enospc + "
                             "torn + bitflip + oom against the journal "
                             "and artifact layer) instead of process chaos")
    args = parser.parse_args()
    if args.disk_faults:
        return run_disk_chaos(args)
    return run_process_chaos(args)


if __name__ == "__main__":
    raise SystemExit(main())
