#!/usr/bin/env python3
"""Chaos smoke: a sweep survives injected crash + hang + corrupt faults.

The CI resilience check.  A small bilateral batch runs under a fault
plan that kills one worker mid-cell (``crash``), wedges another past the
per-cell timeout (``hang``), and ships one schema-invalid payload
(``corrupt``) — all deterministic, all transient (``once``), so with
retries enabled the batch must still complete and its results must be
*identical* to an undisturbed serial run.  The traced run's manifest
must record what the supervisor did (worker deaths, timeouts, quarantined
payloads, retries), and the emitted trace + manifest pair must pass
``scripts/validate_trace.py`` afterwards::

    python scripts/chaos_smoke.py chaos.jsonl
    python scripts/validate_trace.py chaos.jsonl

Exits nonzero on any divergence.  See docs/RESILIENCE.md.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.experiments import (  # noqa: E402
    BilateralCell,
    RetryPolicy,
    default_ivybridge,
    run_cells_parallel,
)
from repro.instrument import trace  # noqa: E402
from repro.instrument.manifest import build_manifest, write_manifest  # noqa: E402
from repro.resilience.faults import clear_faults, install_faults  # noqa: E402

#: one worker crash, one hang (reaped by the timeout), one corrupt payload
FAULT_PLAN = "crash@1,hang@3:seconds=600,corrupt@4"

#: per-cell deadline: generous for a 48^3 cell, tiny next to the hang
CELL_TIMEOUT = 15.0


def make_cells():
    # 48^3 keeps each cell fast but long enough that per-phase durations
    # dwarf scheduler noise — the validate_trace.py cross-check compares
    # phase sums to wall clock within 10%
    base = BilateralCell(platform=default_ivybridge(64), shape=(48, 48, 48),
                         n_threads=2, stencil="r1", pencils_per_thread=1)
    return [replace(base, layout=layout, n_threads=n)
            for n in (2, 4, 8) for layout in ("array", "morton")]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", default="chaos.jsonl",
                        help="trace output path (manifest lands beside it)")
    args = parser.parse_args()

    cells = make_cells()
    print(f"reference run: {len(cells)} cells, serial, no faults")
    clear_faults()
    reference = run_cells_parallel(cells, workers=1)

    print(f"chaos run: faults [{FAULT_PLAN}], workers=2, "
          f"timeout={CELL_TIMEOUT:g}s, 2 retries")
    install_faults(FAULT_PLAN)
    tracer = trace.enable()
    start = time.monotonic()
    try:
        chaotic = run_cells_parallel(
            cells, workers=2, timeout=CELL_TIMEOUT,
            retry=RetryPolicy(max_retries=2, backoff_base=0.05))
    finally:
        trace.disable()
        clear_faults()
    elapsed = time.monotonic() - start

    tracer.write_jsonl(args.trace)
    manifest = build_manifest(tracer, extra={"argv": sys.argv,
                                             "faults": FAULT_PLAN})
    write_manifest(args.trace + ".manifest.json", manifest)

    stats = manifest.get("resilience", {})
    print(f"survived in {elapsed:.1f}s; resilience stats: "
          + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))

    problems = []
    if chaotic != reference:
        problems.append("chaos results differ from the undisturbed run")
    if stats.get("worker_deaths", 0) < 1:
        problems.append("crash fault produced no worker death")
    if stats.get("timeouts", 0) < 1:
        problems.append("hang fault was not reaped by the timeout")
    if stats.get("corrupt", 0) < 1:
        problems.append("corrupt fault was not quarantined")
    if stats.get("retries", 0) < 3:
        problems.append(f"expected >= 3 retries, saw {stats.get('retries')}")
    if stats.get("failures", 0) != 0:
        problems.append(f"{stats['failures']} cells failed outright")
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: {len(cells)} cells identical to reference after "
          f"crash+hang+corrupt; trace: {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
