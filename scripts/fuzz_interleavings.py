#!/usr/bin/env python3
"""Interleaving fuzz: served bytes must not depend on the schedule.

The CI gate for the server's interleaving-independence claim — the
runtime twin of the RPC5xx static rules (docs/STATIC_ANALYSIS.md
§ Async-concurrency).  One seeded workload is served once undisturbed
as the reference, then re-served under N different scheduling seeds:
each seed drives a :class:`repro.serve.fuzz.ScheduleFuzzer` that
injects extra event-loop yields at the session's scheduling seams,
reordering the asyncio ready queue in a different (but reproducible)
way every run.

Every perturbed run must:

* answer every query (nothing shed, nothing rejected — the fuzz runs
  without an admission bound, so any drop is a bug);
* serve payloads **byte-identical** to the reference (sha256 per
  query);
* report identical per-query geometry (chunks needed, segments
  touched, bytes touched/returned) — these are placement facts, not
  timing facts;
* log exactly as many cache accesses as the reference (the *order*
  may differ with the schedule, and with it hit/miss counts — that is
  the one legitimately interleaving-dependent output);
* keep its own cache counters **exact** against the memsim
  stack-distance and hierarchy models for the stream it actually saw.

A final replay of the first seed must reproduce that run yield-for-
yield and access-for-access — the property that makes any divergence
this script ever finds debuggable::

    python scripts/fuzz_interleavings.py --seeds 8

Exits nonzero on any divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.data.synthetic import combustion_field  # noqa: E402
from repro.serve import (  # noqa: E402
    ChunkStore,
    ScheduleFuzzer,
    VolumeServer,
    arrival_times,
    cache_crosscheck,
    generate_queries,
)

SHAPE = (32, 32, 32)
CHUNK = 8
CHUNKS_PER_SEGMENT = 4
ORDER = "hilbert"

N_QUERIES = 24
WORKLOAD_SEED = 11
CACHE = "lru:capacity=8"
CONCURRENCY = 4


def _payload_hashes(results):
    return [hashlib.sha256(np.ascontiguousarray(r.data).tobytes())
            .hexdigest() for r in results]


def _geometry(results):
    return [(r.chunks_needed, r.segments_touched, r.bytes_touched,
             r.bytes_returned) for r in results]


def _serve(store, queries, arrivals, fuzzer=None):
    """One fresh-server run; returns (results, cache, fuzzer)."""
    import asyncio
    server = VolumeServer(store, cache=CACHE)
    results = asyncio.run(server.session(
        queries, concurrency=CONCURRENCY, arrivals=arrivals,
        time_scale=0.0, perturb=fuzzer))
    return results, server.cache, fuzzer


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=8,
                        help="number of scheduling seeds (default 8)")
    args = parser.parse_args()
    seeds = list(range(1, args.seeds + 1))

    dense = combustion_field(SHAPE, seed=WORKLOAD_SEED)
    queries = generate_queries(SHAPE, N_QUERIES, seed=WORKLOAD_SEED)
    arrivals = arrival_times(N_QUERIES, profile="burst", seed=WORKLOAD_SEED)

    problems = []
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-ilv-") as tmp:
        store = ChunkStore.create(
            os.path.join(tmp, "store"), dense, order=ORDER, chunk=CHUNK,
            chunks_per_segment=CHUNKS_PER_SEGMENT)
        print(f"store: {SHAPE} / chunk {CHUNK} / {store.n_segments} "
              f"segments, order {ORDER}; workload: {N_QUERIES} queries, "
              f"concurrency {CONCURRENCY}")

        reference, ref_cache, _ = _serve(store, queries, arrivals)
        want_hashes = _payload_hashes(reference)
        want_geometry = _geometry(reference)
        want_accesses = len(ref_cache.access_log)
        print(f"reference: {want_accesses} cache accesses, "
              f"{ref_cache.hits} hits")

        first_run = None
        for seed in seeds:
            results, cache, fuzzer = _serve(store, queries, arrivals,
                                            ScheduleFuzzer(seed))
            bad = [r for r in results if not r.ok]
            if bad:
                problems.append(
                    f"seed {seed}: {len(bad)} queries unanswered: "
                    + "; ".join(f"{r.reason}: {r.error}" for r in bad[:3]))
                continue
            got_hashes = _payload_hashes(results)
            if got_hashes != want_hashes:
                diff = [i for i, (a, b)
                        in enumerate(zip(got_hashes, want_hashes)) if a != b]
                problems.append(f"seed {seed}: served bytes differ from "
                                f"the unperturbed run at queries {diff}")
            got_geometry = _geometry(results)
            if got_geometry != want_geometry:
                diff = [i for i, (a, b)
                        in enumerate(zip(got_geometry, want_geometry))
                        if a != b]
                problems.append(f"seed {seed}: geometry counters differ "
                                f"at queries {diff}")
            if len(cache.access_log) != want_accesses:
                problems.append(
                    f"seed {seed}: {len(cache.access_log)} cache accesses "
                    f"!= reference {want_accesses} (an access was lost or "
                    f"double-counted)")
            check = cache_crosscheck(cache)
            if not check.consistent:
                problems.append(f"seed {seed}: cache counters diverged "
                                f"from memsim: "
                                + "; ".join(check.mismatches()))
            hits = ", ".join(f"{k}x{v}"
                             for k, v in sorted(fuzzer.hits.items()))
            print(f"seed {seed}: {fuzzer.yields} extra yields ({hits}), "
                  f"{cache.hits} hits, bytes identical")
            if seed == seeds[0]:
                first_run = (fuzzer.yields, list(cache.access_log),
                             cache.hits)

        # same-seed replay: the schedule itself must be deterministic
        if first_run is not None:
            _, cache, fuzzer = _serve(store, queries, arrivals,
                                      ScheduleFuzzer(seeds[0]))
            replay = (fuzzer.yields, list(cache.access_log), cache.hits)
            if replay != first_run:
                problems.append(
                    f"seed {seeds[0]} replay diverged from its first run "
                    f"(yields {first_run[0]}→{replay[0]}, hits "
                    f"{first_run[2]}→{replay[2]}): the fuzzer is not "
                    f"deterministic")

    elapsed = time.monotonic() - t0
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: {N_QUERIES} queries byte-identical and memsim-exact "
          f"across {len(seeds)} scheduling seeds (+1 replay) "
          f"in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
