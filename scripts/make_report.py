#!/usr/bin/env python3
"""Assemble results/*.txt into a single REPRODUCTION_REPORT.md.

Run the benchmark suite first (it writes one table per figure/ablation
into ``results/``), then this script:

    pytest benchmarks/ --benchmark-only
    python scripts/make_report.py [--results results] [--out REPRODUCTION_REPORT.md]

The report interleaves each reproduced table with its one-line summary
from EXPERIMENTS.md's index, so a reviewer can read measured numbers and
the paper-comparison verdicts in one document.
"""

from __future__ import annotations

import argparse
import glob
import os
import platform
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.resilience import artifacts as _artifacts  # noqa: E402

# preferred ordering: paper figures first, extensions, then ablations
_ORDER = [
    "fig1_locality", "fig2_bilateral_ivybridge", "fig3_bilateral_mic",
    "fig4_volrend_viewpoints", "fig5_volrend_ivybridge", "fig6_volrend_mic",
    "ext_image2d", "ext_progressive_access", "ext_size_sweep",
]


def _sort_key(path: str):
    stem = os.path.splitext(os.path.basename(path))[0]
    try:
        return (0, _ORDER.index(stem))
    except ValueError:
        return (1, stem)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="results")
    parser.add_argument("--out", default="REPRODUCTION_REPORT.md")
    args = parser.parse_args()

    paths = sorted(glob.glob(os.path.join(args.results, "*.txt")),
                   key=_sort_key)
    if not paths:
        print(f"no result tables in {args.results!r}; run "
              f"`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 1

    lines = [
        "# Reproduction report",
        "",
        "Regenerated tables for every figure of Bethel et al. (IPDPS-W "
        "2015) plus this repository's extension experiments and "
        "ablations.  Paper-vs-measured commentary lives in "
        "[EXPERIMENTS.md](EXPERIMENTS.md); DESIGN.md carries the "
        "experiment index.",
        "",
        f"Python {platform.python_version()} on {platform.system()} "
        f"{platform.machine()}.",
        "",
    ]
    for path in paths:
        stem = os.path.splitext(os.path.basename(path))[0]
        with open(path) as fh:
            body = fh.read().rstrip()
        lines.append(f"## {stem}")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append("")
    _artifacts.write_text_artifact(args.out, "\n".join(lines) + "\n",
                                   kind="report")
    print(f"wrote {args.out} ({len(paths)} tables)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
