#!/usr/bin/env python3
"""Guard: the access sanitizer must cost < 10% of a cell while disabled.

The sanitizer hook in :mod:`repro.core.grid` is a module-global load
plus an ``is not None`` test in front of every ``get``/``set``/
``gather``/``scatter``/``offsets`` call.  Two measurements back the
"free when off" claim in docs/STATIC_ANALYSIS.md:

1. the per-call cost of the *disabled* guard, multiplied by the number
   of guarded calls an instrumented cell actually makes, compared
   against the cell's unsanitized wall time;
2. the direct comparison: the same cell run with the sanitizer enabled
   (strict mode), reported as a ratio for context (enabled mode is
   allowed to cost — it validates every access).

Exits non-zero when the projected disabled overhead exceeds the
budget, so CI can hold the line.

Run:  python scripts/bench_sanitize.py [--shape 24] [--repeat 5]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.core import grid as grid_mod  # noqa: E402
from repro.experiments import (  # noqa: E402
    BilateralCell,
    clear_caches,
    default_ivybridge,
    run_bilateral_cell,
)
from repro.memsim import sanitize  # noqa: E402

BUDGET = 0.10  # fraction of cell wall time while disabled


def disabled_guard_cost(calls: int = 1_000_000) -> float:
    """Per-call seconds of the ``is not None`` guard while disabled."""
    assert grid_mod._ACCESS_CHECK is None
    t0 = time.perf_counter()
    for _ in range(calls):
        if grid_mod._ACCESS_CHECK is not None:  # the guarded-site shape
            pass
    return (time.perf_counter() - t0) / calls


def guarded_call_count(cell) -> int:
    """How many guarded Grid accesses one run of ``cell`` makes."""
    calls = [0]

    def counting_hook(layout, offsets):
        calls[0] += 1

    grid_mod._install_access_check(counting_hook)
    try:
        run_bilateral_cell(cell)
    finally:
        grid_mod._install_access_check(None)
    return calls[0]


def cell_wall_time(cell, repeat: int) -> float:
    """Best-of-N unsanitized wall seconds for one cell run (caches warm)."""
    run_bilateral_cell(cell)  # warm dataset/grid caches
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        run_bilateral_cell(cell)
        best = min(best, time.perf_counter() - t0)
    return best


def sanitized_wall_time(cell, repeat: int) -> float:
    """Best-of-N wall seconds with the sanitizer enabled (strict)."""
    sanitize.enable("strict")
    try:
        return cell_wall_time(cell, repeat)
    finally:
        sanitize.disable()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shape", type=int, default=24)
    parser.add_argument("--repeat", type=int, default=5)
    args = parser.parse_args()

    cell = BilateralCell(
        platform=default_ivybridge(64), layout="morton",
        shape=(args.shape,) * 3, stencil="r1", n_threads=2,
    )

    per_call = disabled_guard_cost()
    n_calls = guarded_call_count(cell)
    clear_caches()
    wall = cell_wall_time(cell, args.repeat)
    projected = per_call * n_calls
    frac = projected / wall

    sanitized = sanitized_wall_time(cell, args.repeat)

    print(f"disabled guard cost : {per_call * 1e9:8.1f} ns/call")
    print(f"guarded calls/cell  : {n_calls:8d}")
    print(f"unsanitized time    : {wall * 1e3:8.2f} ms")
    print(f"projected overhead  : {projected * 1e6:8.2f} us "
          f"({frac * 100:.3f}% of cell)")
    print(f"sanitized (strict)  : {sanitized * 1e3:8.2f} ms "
          f"({sanitized / wall:.2f}x, informational)")
    if frac >= BUDGET:
        print(f"FAIL: disabled-sanitizer overhead {frac * 100:.2f}% "
              f">= {BUDGET * 100:.0f}% budget")
        return 1
    print(f"OK: under the {BUDGET * 100:.0f}% budget while disabled")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
