#!/usr/bin/env python3
"""Validate a trace file + manifest pair (the CI smoke check).

Checks the JSON-lines trace against the span schema (meta header, id
uniqueness, parent resolution, dur arithmetic), the manifest against
the manifest schema, and the two against each other: every manifest
cell must correspond to a ``cell`` span, each cell's summed phase
durations must reconcile with its recorded ``wall_seconds`` within the
acceptance tolerance, and the manifest's ``serve`` section (including
the ``cluster_*`` / ``scrub_*`` tallies a chaos-cluster run stamps)
must equal the section re-derived from the trace's own counters and
span attributes.

Run:  python scripts/validate_trace.py TRACE.jsonl [MANIFEST.json]
      (manifest defaults to TRACE.jsonl.manifest.json)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.instrument.manifest import (  # noqa: E402
    serve_entries_from_records,
    validate_manifest,
    validate_trace_file,
)

TOLERANCE = 0.10  # phase-sum vs wall_seconds


def cross_check(trace_path: str, manifest: dict) -> list:
    """Trace/manifest consistency problems (empty list = clean).

    Manifest cells derive 1:1 (in file order) from the trace's ``cell``
    spans, so the two are paired positionally — which stays correct
    when a resumed run re-executes a cell and the merged trace carries
    two spans with the same cell index.  Per-cell phases are attributed
    through their parent span id, for the same reason.
    """
    with open(trace_path) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    spans = [r for r in records if r.get("type") == "span"]
    cell_spans = [r for r in spans if r["name"] == "cell"]
    phase_sums: dict = {}
    for r in spans:
        if r["name"].startswith("cell.") and r.get("parent") is not None:
            phase_sums[r["parent"]] = phase_sums.get(r["parent"], 0.0) \
                + r["dur"]
    problems = []
    if len(cell_spans) != len(manifest["cells"]):
        problems.append(
            f"{len(cell_spans)} cell spans vs "
            f"{len(manifest['cells'])} manifest cells")
    for span, cell in zip(cell_spans, manifest["cells"]):
        idx = cell["index"]
        if span["attrs"].get("cell") != idx:
            problems.append(
                f"manifest cell {idx} pairs with a span tagged "
                f"cell={span['attrs'].get('cell')}")
            continue
        wall = cell["wall_seconds"]
        phase_sum = phase_sums.get(span["id"], 0.0)
        if wall > 0 and abs(phase_sum - wall) / wall > TOLERANCE:
            problems.append(
                f"cell {idx}: phase sum {phase_sum:.6f}s vs "
                f"wall {wall:.6f}s exceeds {TOLERANCE:.0%}")
    # the serve section (reliability/cluster/scrub tallies) must equal
    # what the trace itself adds up to — same derivation, two sources
    meta = next((r for r in records if r.get("type") == "meta"), {})
    derived = serve_entries_from_records(spans, meta.get("counters"))
    recorded = manifest.get("serve") or {}
    for key in sorted(set(derived) | set(recorded)):
        if derived.get(key) != recorded.get(key):
            problems.append(
                f"serve entry {key!r}: trace derives "
                f"{derived.get(key)!r}, manifest records "
                f"{recorded.get(key)!r}")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("manifest", nargs="?", default=None)
    args = parser.parse_args()
    manifest_path = args.manifest or args.trace + ".manifest.json"

    n_spans = validate_trace_file(args.trace)
    with open(manifest_path) as fh:
        manifest = validate_manifest(json.load(fh))
    problems = cross_check(args.trace, manifest)
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    print(f"OK: {n_spans} spans, {len(manifest['cells'])} cells, "
          f"phases reconcile within {TOLERANCE:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
