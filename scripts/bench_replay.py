#!/usr/bin/env python3
"""Time the scalar vs vectorized cache replay on a real kernel stream.

Replays a 64^3 bilateral-filter r3 pencil stream (the acceptance
workload) through unscaled platform-sized caches with both backends and
reports the speedup, plus a cells/minute figure for parallel sweeps.

Run:  python scripts/bench_replay.py [--shape 64] [--repeat 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.core.grid import Grid  # noqa: E402
from repro.core.registry import make_layout  # noqa: E402
from repro.data.synthetic import mri_phantom  # noqa: E402
from repro.kernels.bilateral import BilateralFilter3D, BilateralSpec  # noqa: E402
from repro.memsim.address import AddressSpace  # noqa: E402
from repro.memsim.cache import Cache, CacheConfig  # noqa: E402
from repro.parallel.pencil import Pencil  # noqa: E402


def kernel_stream(shape: tuple) -> np.ndarray:
    """Line-address stream of r3 zyx pencils through a Morton grid."""
    dense = mri_phantom(shape, noise=0.05, seed=0)
    grid = Grid.from_dense(dense, make_layout("morton", shape))
    filt = BilateralFilter3D(BilateralSpec(radius=3, stencil_order="zyx"))
    space = AddressSpace(64)
    mid = (shape[0] // 2, shape[1] // 2)
    chunks = [filt.pencil_trace(grid, Pencil(axis=2, fixed=(mid[0] + d, mid[1])),
                                space)
              for d in range(4)]
    return np.concatenate([c.lines for c in chunks])


def replay_time(lines: np.ndarray, cfg: CacheConfig, backend: str,
                repeat: int, quantum: int = 0) -> float:
    """Best-of-`repeat` wall time to push the stream through one cache.

    ``quantum=0`` replays the whole trace in one call (the locality-
    analysis / single-thread replay case the vector backend targets);
    a positive quantum chunks like the engine's interleaver, where
    per-call overhead shrinks the vector advantage."""
    step = quantum if quantum > 0 else lines.size
    best = float("inf")
    for _ in range(repeat):
        cache = Cache(cfg, seed=0, backend=backend)
        t0 = time.perf_counter()
        for pos in range(0, lines.size, step):
            cache.access_lines(lines[pos:pos + step])
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--shape", type=int, default=64)
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--quantum", type=int, default=0,
                    help="chunk size per access_lines call "
                         "(0 = whole trace in one call, the default)")
    args = ap.parse_args()
    shape = (args.shape,) * 3

    print(f"generating bilateral r3 stream at {shape} ...", file=sys.stderr)
    lines = kernel_stream(shape)
    print(f"{lines.size} line accesses\n")

    # unscaled platform-like geometries (full-size volumes need full-size
    # caches; the scaled()/64 experiment configs have too few sets for
    # batching to matter and auto-select the scalar path there)
    configs = [
        CacheConfig("L1", 32 * 1024, ways=8),            # 64 sets
        CacheConfig("L2", 256 * 1024, ways=8),           # 512 sets
        CacheConfig("L3-slice", 2 * 1024 * 1024, ways=16),  # 2048 sets
    ]
    worst = float("inf")
    print(f"{'cache':<10} {'sets':>6} {'scalar':>10} {'vector':>10} "
          f"{'speedup':>8}")
    for cfg in configs:
        t_scalar = replay_time(lines, cfg, "scalar", args.repeat,
                               args.quantum)
        t_vector = replay_time(lines, cfg, "vector", args.repeat,
                               args.quantum)
        speedup = t_scalar / t_vector
        worst = min(worst, speedup)
        print(f"{cfg.name:<10} {cfg.n_sets:>6} {t_scalar * 1e3:>8.1f}ms "
              f"{t_vector * 1e3:>8.1f}ms {speedup:>7.2f}x")

    rate = lines.size / replay_time(lines, configs[1], "vector", 1)
    print(f"\nvector replay throughput: {rate / 1e6:.1f} M lines/s")
    print(f"worst-case speedup {worst:.2f}x "
          f"({'PASS' if worst >= 3.0 else 'BELOW'} the 3x acceptance bar)")
    return 0 if worst >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
